package hpc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	sempatch "repro"
	"repro/internal/accomp"
	"repro/internal/codegen"
	"repro/internal/cparse"
	"repro/internal/hipify"
)

// applyOne runs a campaign over one in-memory file and returns the output.
func applyOne(t *testing.T, c *Campaign, opts sempatch.Options, name, src string) (string, sempatch.CampaignStats) {
	t.Helper()
	ca, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := src
	st, err := ca.ApplyAllFunc([]sempatch.File{{Name: name, Src: src}}, func(fr sempatch.CampaignFileResult) error {
		if fr.Err != nil {
			t.Fatalf("%s: %v", fr.Name, fr.Err)
		}
		out = fr.Output
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func TestRegistry(t *testing.T) {
	want := []string{"acc2omp", "acc2omp-offload", "hipify", "hpc-checks"}
	got := Campaigns()
	if len(got) != len(want) {
		t.Fatalf("want %d campaigns, got %d", len(want), len(got))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("campaign %d: want %s, got %s", i, name, got[i].Name)
		}
		c, ok := ByName(name)
		if !ok || c.Name != name {
			t.Errorf("ByName(%s) failed", name)
		}
		if c.Title == "" || c.Version == "" {
			t.Errorf("%s: empty title or version", name)
		}
		if len(c.PatchNames()) == 0 {
			t.Errorf("%s: no member patches", name)
		}
		if _, err := c.Patches(); err != nil {
			t.Errorf("%s: generated patch does not parse: %v", name, err)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should miss")
	}
}

// The generated hipify patches embed the dictionaries, so the member text
// must reshape when a dictionary entry would change — spot-check that the
// stream/event additions are present.
func TestHipifyPatchTextTracksDictionary(t *testing.T) {
	c := hipifyCampaign()
	funcs := c.PatchText("hipify-funcs.cocci")
	for _, name := range []string{"cudaStreamCreateWithPriority", "cudaStreamBeginCapture", "cudaEventRecordWithFlags"} {
		if !strings.Contains(funcs, "- "+name+"\n+ "+hipify.Functions[name]) {
			t.Errorf("funcs patch missing dictionary entry %s", name)
		}
	}
	if strings.Contains(funcs, "- __syncthreads") {
		t.Error("identity dictionary entries must not generate rules")
	}
	enums := c.PatchText("hipify-enums.cocci")
	if !strings.Contains(enums, "- cudaStreamCaptureModeGlobal\n+ hipStreamCaptureModeGlobal") {
		t.Error("enums patch missing stream-capture enumerators")
	}
}

// TestHipifyParity pins the campaign byte-identical to the legacy AST
// walker across the fixture corpus shapes (the acceptance criterion).
func TestHipifyParity(t *testing.T) {
	c, _ := ByName("hipify")
	cases := []struct {
		shape string
		gen   func(codegen.Config) string
		cfg   codegen.Config
	}{
		{"cuda", codegen.CUDA, codegen.Config{Funcs: 2, StmtsPerFunc: 1, Seed: 1}},
		{"cuda", codegen.CUDA, codegen.Config{Funcs: 3, StmtsPerFunc: 2, Seed: 20250326}},
		{"cuda", codegen.CUDA, codegen.Config{Funcs: 5, StmtsPerFunc: 3, Seed: 7}},
		{"curand", codegen.Curand, codegen.Config{Funcs: 2, StmtsPerFunc: 2, Seed: 1}},
		{"curand", codegen.Curand, codegen.Config{Funcs: 4, StmtsPerFunc: 1, Seed: 42}},
	}
	for _, tc := range cases {
		src := tc.gen(tc.cfg)
		name := tc.shape + ".cu"
		legacy, rep, err := hipify.Translate(name, src)
		if err != nil {
			t.Fatalf("legacy %s: %v", tc.shape, err)
		}
		if rep.Total() == 0 {
			t.Fatalf("%s: fixture exercises nothing", tc.shape)
		}
		got, _ := applyOne(t, c, sempatch.Options{}, name, src)
		if got != legacy {
			t.Errorf("%s (funcs=%d stmts=%d seed=%d): campaign diverges from legacy:\n--- legacy\n%s\n--- campaign\n%s",
				tc.shape, tc.cfg.Funcs, tc.cfg.StmtsPerFunc, tc.cfg.Seed, legacy, got)
		}
	}
}

// TestAcc2ompParity pins both acc2omp campaigns byte-identical to the
// legacy line walker on the generated OpenACC corpus.
func TestAcc2ompParity(t *testing.T) {
	for _, offload := range []bool{false, true} {
		name := "acc2omp"
		mode := accomp.Host
		if offload {
			name, mode = "acc2omp-offload", accomp.Offload
		}
		c, _ := ByName(name)
		for _, cfg := range []codegen.Config{
			{Funcs: 2, StmtsPerFunc: 1, Seed: 1},
			{Funcs: 3, StmtsPerFunc: 1, Seed: 20250326},
			{Funcs: 6, StmtsPerFunc: 2, Seed: 99},
		} {
			src := codegen.OpenACC(cfg)
			legacy, _, err := accomp.TranslateSource(src, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := applyOne(t, c, sempatch.Options{}, "acc.c", src)
			if got != legacy {
				t.Errorf("%s (funcs=%d seed=%d): campaign diverges from legacy:\n--- legacy\n%s\n--- campaign\n%s",
					name, cfg.Funcs, cfg.Seed, legacy, got)
			}
		}
	}
}

// TestHipifyWarmSweep is the acceptance scenario: a repeat sweep over an
// unchanged corpus replays entirely from the result cache (zero parses),
// and after editing one function in one file, the function-granular cache
// replays the untouched segments (function-cache hits > 0).
func TestHipifyWarmSweep(t *testing.T) {
	c, _ := ByName("hipify")
	dir := t.TempDir()
	var paths []string
	for i, seed := range []int64{1, 2, 3} {
		p := filepath.Join(dir, "app"+string(rune('a'+i))+".cu")
		src := codegen.CUDA(codegen.Config{Funcs: 3, StmtsPerFunc: 2, Seed: seed})
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	opts := sempatch.Options{CacheDir: filepath.Join(dir, "cache")}
	sweep := func() sempatch.CampaignStats {
		ca, err := c.Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := ca.ApplyAllPathsFunc(paths, func(fr sempatch.CampaignFileResult) error {
			if fr.Err != nil {
				t.Fatalf("%s: %v", fr.Name, fr.Err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	sweep() // cold: prime the cache

	before := cparse.Parses()
	st := sweep() // warm repeat: identical corpus
	if parsed := cparse.Parses() - before; parsed != 0 {
		t.Errorf("warm repeat sweep parsed %d files, want 0", parsed)
	}
	for _, ps := range st.PerPatch {
		if ps.Cached != len(paths) {
			t.Errorf("warm sweep: patch %s replayed %d/%d files from cache", ps.Patch, ps.Cached, len(paths))
		}
	}

	// Edit one function body in one file: the launch member's per-function
	// cache replays the untouched segments.
	b, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(b), "int i = blockIdx.x", "int i = 1 + blockIdx.x", 1)
	if edited == string(b) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(paths[0], []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	st = sweep()
	hits := 0
	for _, ps := range st.PerPatch {
		hits += ps.FuncsCached
	}
	if hits == 0 {
		t.Errorf("edited-file sweep: want function-cache hits > 0, got stats %+v", st.PerPatch)
	}
}

// TestHipifyVerifyDemotesCapture seeds the capture-avoidance hazard: a
// function that already declares a local named hipMalloc and calls
// cudaMalloc. The rename would bind the introduced reference to the local,
// so --verify must demote the edit to a warning for that file.
func TestHipifyVerifyDemotesCapture(t *testing.T) {
	c, _ := ByName("hipify")
	src := `int f(int n) {
	int hipMalloc = 0;
	cudaMalloc(&hipMalloc, n);
	return hipMalloc;
}
`
	out, st := applyOne(t, c, sempatch.Options{Verify: true}, "seed.cu", src)
	if out != src {
		t.Errorf("unsafe edit was not demoted:\n%s", out)
	}
	demoted, warned := 0, 0
	for _, ps := range st.PerPatch {
		demoted += ps.Demoted
		warned += ps.Warnings
	}
	if demoted == 0 || warned == 0 {
		t.Errorf("want demotion with warnings, got %+v", st.PerPatch)
	}

	// The same source without the colliding local transforms normally.
	safe := strings.ReplaceAll(src, "hipMalloc", "buf")
	out, st = applyOne(t, c, sempatch.Options{Verify: true}, "safe.cu", safe)
	if !strings.Contains(out, "hipMalloc(&buf, n)") {
		t.Errorf("safe edit should go through:\n%s", out)
	}
	for _, ps := range st.PerPatch {
		if ps.Demoted != 0 {
			t.Errorf("safe edit demoted: %+v", ps)
		}
	}
}
