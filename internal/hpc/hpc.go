// Package hpc is the shipped-campaign registry: the paper's headline HPC
// transformations (CUDA→HIP, OpenACC→OpenMP) packaged as named, versioned
// semantic-patch campaigns runnable through the engine's batch runner. Where
// internal/patchlib embeds the paper's listings as single-file experiments,
// this package ships the same transformations as production campaigns — the
// SmPL text is generated from the live dictionaries (internal/hipify) or
// wired to the live translator (internal/accomp) through versioned script
// hooks, so the campaign CLIs inherit the prefilter, worker pool,
// per-function cache, and persistent result cache for free, and stay
// byte-identical to the v0 bespoke walkers on the supported code shapes.
//
// A campaign's generated patch text embeds the dictionary entries it was
// generated from, so the persistent result cache self-invalidates when a
// dictionary changes; script hooks that call live Go code declare a version
// (RegisterScriptVersioned) derived from the code's own fingerprint for the
// same reason.
package hpc

import (
	"fmt"

	sempatch "repro"
)

// Campaign is one shipped HPC transformation: an ordered list of semantic
// patches, the script hooks they need, and the dialect they must be run
// under.
type Campaign struct {
	// Name is the registry key ("hipify", "acc2omp", "acc2omp-offload").
	Name string
	// Title is the one-line description shown by --list-campaigns.
	Title string
	// Version identifies this campaign's generation logic; dictionary and
	// translator content is fingerprinted separately (via patch text and
	// hook versions), so Version only moves when the patch shapes change.
	Version string
	// CPlusPlus, Std, and CUDA are the dialect the member patches require;
	// Build overlays them onto the caller's options.
	CPlusPlus bool
	Std       int
	CUDA      bool

	members []member
	hooks   []hook
}

// member is one patch of the campaign, in application order.
type member struct {
	name string // the member's .cocci name, shown in per-patch stats
	text string // SmPL source
}

// hook is one native Go script handler with its cache-keying version.
type hook struct {
	rule    string
	version string
	fn      sempatch.ScriptFunc
}

// PatchNames lists the member patch names in application order.
func (c *Campaign) PatchNames() []string {
	out := make([]string, len(c.members))
	for i, m := range c.members {
		out[i] = m.name
	}
	return out
}

// PatchText returns the SmPL source of the named member ("" when absent) —
// exposed for tests and tooling that audit the generated patches.
func (c *Campaign) PatchText(name string) string {
	for _, m := range c.members {
		if m.name == name {
			return m.text
		}
	}
	return ""
}

// Patches parses every member into the public patch type.
func (c *Campaign) Patches() ([]*sempatch.Patch, error) {
	out := make([]*sempatch.Patch, len(c.members))
	for i, m := range c.members {
		p, err := sempatch.ParsePatch(m.name, m.text)
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		out[i] = p
	}
	return out, nil
}

// Options overlays the campaign's required dialect onto base; every other
// knob (workers, cache, prefilter, verify) stays the caller's.
func (c *Campaign) Options(base sempatch.Options) sempatch.Options {
	base.CPlusPlus, base.Std, base.CUDA = c.CPlusPlus, c.Std, c.CUDA
	return base
}

// Build compiles the campaign for batch application under the caller's
// options (dialect fields overridden by the campaign's) and registers its
// script hooks with their versions, keeping the persistent result cache
// sound and enabled.
func (c *Campaign) Build(base sempatch.Options) (*sempatch.Campaign, error) {
	patches, err := c.Patches()
	if err != nil {
		return nil, err
	}
	ca := sempatch.NewCampaign(patches, c.Options(base))
	for _, h := range c.hooks {
		ca.RegisterScriptVersioned(h.rule, h.version, h.fn)
	}
	return ca, nil
}

// Campaigns returns the registry in stable order.
func Campaigns() []*Campaign {
	return []*Campaign{acc2omp(false), acc2omp(true), hipifyCampaign(), checksCampaign()}
}

// ByName looks a shipped campaign up.
func ByName(name string) (*Campaign, bool) {
	for _, c := range Campaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}
