package hpc

import (
	"strings"
	"testing"

	sempatch "repro"
)

// checkSrc trips every hpc-checks rule exactly once, plus a clean variant of
// each shape that must stay silent.
const checkSrc = `int work(float *d, int n) {
	cudaMalloc((void **)&d, n);
	if (cudaMalloc((void **)&d, n) != cudaSuccess)
		return 1;
	kern<<<g, b, 128, 0>>>(d, n);
	kern<<<g, b, 128, st>>>(d, n);
	cudaDeviceSynchronize();
	cudaStreamSynchronize(st);
	return 0;
}
void loops(float *a, int n) {
#pragma acc parallel loop
	for (int i = 0; i < n; i++)
		a[i] = 0;
#pragma acc parallel loop copyin(a[0:n])
	for (int i = 0; i < n; i++)
		a[i] = 1;
#pragma acc kernels
	for (int i = 0; i < n; i++)
		a[i] = 2;
}
int leak(int n) {
	char *p = 0;
	p = malloc(n);
	if (n > 4)
		return 1;
	free(p);
	return 0;
}
int noleak(int n) {
	char *p = 0;
	p = malloc(n);
	free(p);
	return 0;
}
`

// checkFindings runs a match-only campaign over one in-memory file and
// collects the findings, asserting the file is never rewritten.
func checkFindings(t *testing.T, c *Campaign, name, src string) []sempatch.Finding {
	t.Helper()
	ca, err := c.Build(sempatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var findings []sempatch.Finding
	_, err = ca.ApplyAllFunc([]sempatch.File{{Name: name, Src: src}}, func(fr sempatch.CampaignFileResult) error {
		if fr.Err != nil {
			t.Fatalf("%s: %v", fr.Name, fr.Err)
		}
		if fr.Output != src {
			t.Errorf("%s: check campaign rewrote the file", fr.Name)
		}
		findings = append(findings, fr.Findings()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestChecksCampaignIsMatchOnly(t *testing.T) {
	c := checksCampaign()
	patches, err := c.Patches()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patches {
		if !p.HasChecks() {
			t.Errorf("%s: no check rules", c.members[i].name)
		}
	}
}

func TestChecksCampaignFindings(t *testing.T) {
	c, ok := ByName("hpc-checks")
	if !ok {
		t.Fatal("hpc-checks not registered")
	}
	findings := checkFindings(t, c, "work.cu", checkSrc)
	want := map[string]struct {
		severity string
		line     int
	}{
		"cuda-malloc-unchecked":      {"error", 2},
		"cuda-sync-device":           {"warning", 7},
		"cuda-launch-default-stream": {"warning", 5},
		"acc-parallel-no-clauses":    {"warning", 12},
		"acc-kernels":                {"info", 18},
		"host-alloc-no-free":         {"warning", 24},
	}
	got := map[string]sempatch.Finding{}
	for _, f := range findings {
		if prev, dup := got[f.Check]; dup {
			t.Errorf("check %s fired twice (lines %d and %d)", f.Check, prev.Line, f.Line)
		}
		got[f.Check] = f
	}
	for id, w := range want {
		f, ok := got[id]
		if !ok {
			t.Errorf("check %s did not fire", id)
			continue
		}
		if f.Severity != w.severity {
			t.Errorf("%s: severity %s, want %s", id, f.Severity, w.severity)
		}
		if f.Line != w.line {
			t.Errorf("%s: line %d, want %d", id, f.Line, w.line)
		}
		if f.File != "work.cu" || f.Message == "" || f.FuncHash == "" {
			t.Errorf("%s: incomplete finding %+v", id, f)
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			t.Errorf("unexpected finding %s", id)
		}
	}
}

// The messages interpolate metavariables from the match environment.
func TestChecksCampaignMsgInterpolation(t *testing.T) {
	c, ok := ByName("hpc-checks")
	if !ok {
		t.Fatal("hpc-checks not registered")
	}
	for _, f := range checkFindings(t, c, "work.cu", checkSrc) {
		switch f.Check {
		case "cuda-launch-default-stream":
			if !strings.Contains(f.Message, "kern") || !strings.Contains(f.Message, "128") {
				t.Errorf("launch msg not interpolated: %q", f.Message)
			}
		case "host-alloc-no-free":
			if !strings.Contains(f.Message, "p ") {
				t.Errorf("leak msg not interpolated: %q", f.Message)
			}
		}
	}
}
