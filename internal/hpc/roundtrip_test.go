package hpc

// Golden round-trip: every generated campaign member patch must survive the
// SmPL renderer's parse→print→parse fixpoint, and a campaign rebuilt from
// the rendered texts must transform the fixture corpus byte-identically to
// the original.

import (
	"reflect"
	"testing"

	sempatch "repro"
	"repro/internal/codegen"
	"repro/internal/smpl"
)

func TestCampaignPatchesRenderRoundTrip(t *testing.T) {
	for _, c := range Campaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			rendered := *c
			rendered.members = nil
			for _, m := range c.members {
				p, err := smpl.ParsePatch(m.name, m.text)
				if err != nil {
					t.Fatalf("%s does not parse: %v", m.name, err)
				}
				text := smpl.Render(p)
				p2, err := smpl.ParsePatch(m.name, text)
				if err != nil {
					t.Fatalf("%s rendered does not re-parse: %v\nrendered:\n%s", m.name, err, text)
				}
				if again := smpl.Render(p2); again != text {
					t.Fatalf("%s render is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", m.name, text, again)
				}
				rendered.members = append(rendered.members, member{name: m.name, text: text})
			}

			// Semantic equivalence on a generated fixture: the campaign
			// rebuilt from rendered member texts must produce the same bytes
			// — or, for the match-only checks campaign, the same findings.
			var name, src string
			switch c.Name {
			case "hipify":
				name, src = "rt.cu", codegen.CUDA(codegen.Config{Funcs: 3, StmtsPerFunc: 2, Seed: 20250326})
			case "hpc-checks":
				origF := checkFindings(t, c, "rt.cu", checkSrc)
				renF := checkFindings(t, &rendered, "rt.cu", checkSrc)
				if len(origF) == 0 {
					t.Fatalf("%s: fixture exercises nothing", c.Name)
				}
				if len(renF) != len(origF) {
					t.Fatalf("rendered campaign diverges: %d findings, want %d", len(renF), len(origF))
				}
				for i := range origF {
					if !reflect.DeepEqual(renF[i], origF[i]) {
						t.Errorf("finding %d diverges:\noriginal: %+v\nrendered: %+v", i, origF[i], renF[i])
					}
				}
				return
			default:
				name, src = "rt.c", codegen.OpenACC(codegen.Config{Funcs: 3, StmtsPerFunc: 2, Seed: 20250326})
			}
			origOut, _ := applyOne(t, c, sempatch.Options{}, name, src)
			renOut, _ := applyOne(t, &rendered, sempatch.Options{}, name, src)
			if origOut == src {
				t.Fatalf("%s: fixture exercises nothing", c.Name)
			}
			if renOut != origOut {
				t.Errorf("rendered campaign diverges:\n--- original\n%s\n--- rendered\n%s", origOut, renOut)
			}
		})
	}
}
