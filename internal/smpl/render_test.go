package smpl

import (
	"strings"
	"testing"

	"repro/internal/cast"
)

// fixpoint asserts the parse→print→parse contract on one patch text: the
// rendered text parses, and rendering the re-parse reproduces it exactly.
func fixpoint(t *testing.T, name, text string) *Patch {
	t.Helper()
	p1, err := ParsePatch(name, text)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	r1 := Render(p1)
	p2, err := ParsePatch(name, r1)
	if err != nil {
		t.Fatalf("re-parse of rendered %s failed: %v\nrendered:\n%s", name, err, r1)
	}
	r2 := Render(p2)
	if r1 != r2 {
		t.Errorf("%s: render not a fixpoint\nfirst:\n%s\nsecond:\n%s", name, r1, r2)
	}
	return p2
}

func TestRenderFixpointSimple(t *testing.T) {
	p := fixpoint(t, "simple.cocci", `@rename@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if len(p.Rules) != 1 || p.Rules[0].Name != "rename" {
		t.Fatalf("re-parse lost structure: %+v", p.Rules)
	}
	if !p.Rules[0].Pattern.HasTransform {
		t.Error("re-parsed rule lost its transformation")
	}
}

func TestRenderFixpointFullFeatures(t *testing.T) {
	text := `virtual fix_gcc, with_mpi;

@base@
type T;
identifier x =~ "^buf_";
constant k = {4,8};
expression E;
@@
- T x = alloc(E, k);
+ T x = alloc_aligned(E, k);

@script:python derive@
v << base.x;
out;
@@
out = v

@fixup depends on base && (fix_gcc || !with_mpi)@
identifier base.x;
fresh identifier tmp = "tmp_" ## x;
@@
- use(x)
+ use_checked(x)
`
	p := fixpoint(t, "full.cocci", text)
	if len(p.Virtuals) != 2 {
		t.Errorf("virtuals lost: %v", p.Virtuals)
	}
	if len(p.Rules) != 3 {
		t.Fatalf("rules lost: %d", len(p.Rules))
	}
	if p.Rules[1].Kind != ScriptRule || p.Rules[1].Lang != "python" {
		t.Errorf("script rule mangled: %+v", p.Rules[1])
	}
	dep := p.Rules[2].Depends
	if dep == nil || len(dep.And) != 2 {
		t.Fatalf("depends lost: %+v", dep)
	}
	if got := RenderDep(dep); got != "base && (fix_gcc || !with_mpi)" {
		t.Errorf("RenderDep = %q", got)
	}
	// Metavariable features survive: regex, value set, inheritance, fresh.
	base := p.Rules[0]
	var sawRegex, sawValues bool
	for _, m := range base.Metas {
		if m.Regex != nil && m.Regex.String() == "^buf_" {
			sawRegex = true
		}
		if len(m.Values) == 2 && m.Values[0] == "4" {
			sawValues = true
		}
	}
	if !sawRegex || !sawValues {
		t.Errorf("metavariable constraints lost: regex=%v values=%v", sawRegex, sawValues)
	}
	fix := p.Rules[2]
	var sawInherit, sawFresh bool
	for _, m := range fix.Metas {
		if m.FromRule == "base" && m.RemoteName == "x" {
			sawInherit = true
		}
		if m.Kind == cast.MetaFreshIdentKind && len(m.Fresh) == 2 {
			sawFresh = true
		}
	}
	if !sawInherit || !sawFresh {
		t.Errorf("inherited/fresh metavariables lost: inherit=%v fresh=%v", sawInherit, sawFresh)
	}
}

func TestRenderFixpointDotsAndWhen(t *testing.T) {
	fixpoint(t, "dots.cocci", `@r@
expression E;
@@
  init(E);
  ... when != release(E)
      when strict
- use(E);
+ use_v2(E);
`)
}

func TestRenderFixpointInitializeFinalize(t *testing.T) {
	fixpoint(t, "scripts.cocci", `@initialize:python@
@@
count = 0

@r@
@@
- old()
+ new()

@finalize:python@
@@
print(count)
`)
}

func TestBuildPatch(t *testing.T) {
	rules := []*Rule{{
		Name: "inferred",
		Kind: MatchRule,
		Metas: []*MetaDecl{
			NewMetaDecl(cast.MetaExprKind, "E1"),
			NewMetaDecl(cast.MetaIdentKind, "I1"),
		},
		Body: "- I1 = old_call(E1);\n+ I1 = new_call(E1, 0);",
	}}
	p, err := BuildPatch("built.cocci", nil, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || p.Rules[0].Pattern == nil {
		t.Fatalf("built patch did not compile: %+v", p.Rules)
	}
	if p.Src != Render(p) {
		t.Error("BuildPatch Src is not the rendered text")
	}
	// The built patch round-trips like any hand-written one.
	fixpoint(t, "built.cocci", p.Src)
}

func TestRenderMetaKinds(t *testing.T) {
	// Every kind keyword the parser accepts renders back to itself.
	for _, m := range []struct {
		kind cast.MetaKind
		want string
	}{
		{cast.MetaExprKind, "expression x;"},
		{cast.MetaIdentKind, "identifier x;"},
		{cast.MetaTypeKind, "type x;"},
		{cast.MetaConstKind, "constant x;"},
		{cast.MetaStmtKind, "statement x;"},
		{cast.MetaExprListKind, "expression list x;"},
		{cast.MetaPragmaInfoKind, "pragmainfo x;"},
	} {
		if got := RenderMeta(NewMetaDecl(m.kind, "x")); got != m.want {
			t.Errorf("RenderMeta(%v) = %q, want %q", m.kind, got, m.want)
		}
		// And the rendered declaration parses back to the same kind.
		r := &Rule{Kind: MatchRule}
		if err := parseMetaDecl("t", strings.TrimSuffix(RenderMeta(NewMetaDecl(m.kind, "x")), ";"), r); err != nil {
			t.Errorf("rendered decl %q does not parse: %v", m.want, err)
		} else if len(r.Metas) != 1 || r.Metas[0].Kind != m.kind {
			t.Errorf("rendered decl %q re-parsed as %+v", m.want, r.Metas)
		}
	}
}
