package smpl

import (
	"strings"
	"testing"
	"testing/quick"
)

// corpus of valid patches used as mutation seeds.
var seedPatches = []string{
	"@r@\nexpression e;\n@@\n- f(e)\n+ g(e)\n",
	"@a@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n",
	"@p@\npragmainfo pi;\n@@\n#pragma acc pi\n",
	"@s@\nconstant k={4};\nstatement A;\n@@\n\\( A \\& k \\)\n",
	"@d depends on p@\n@@\n- x();\n",
}

// Property: ParsePatch never panics, whatever mutation we apply; it either
// succeeds or returns a SyntaxError-ish error.
func TestQuickParseNeverPanics(t *testing.T) {
	mutate := func(s string, a, b uint8) string {
		if len(s) == 0 {
			return s
		}
		i := int(a) % len(s)
		switch b % 4 {
		case 0: // delete a byte
			return s[:i] + s[i+1:]
		case 1: // duplicate a byte
			return s[:i] + string(s[i]) + s[i:]
		case 2: // flip to an interesting char
			chars := "@+-(){}|&\\.;"
			return s[:i] + string(chars[int(b)%len(chars)]) + s[i+1:]
		default: // truncate
			return s[:i]
		}
	}
	prop := func(pick, a, b uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on mutated patch: %v", r)
				ok = false
			}
		}()
		src := mutate(seedPatches[int(pick)%len(seedPatches)], a, b)
		_, _ = ParsePatch("fuzz.cocci", src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: parsing is deterministic.
func TestQuickParseDeterministic(t *testing.T) {
	prop := func(pick uint8) bool {
		src := seedPatches[int(pick)%len(seedPatches)]
		p1, e1 := ParsePatch("a.cocci", src)
		p2, e2 := ParsePatch("a.cocci", src)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return e1.Error() == e2.Error()
		}
		return len(p1.Rules) == len(p2.Rules)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMetaDeclEdgeCases(t *testing.T) {
	// multiple names, whitespace variations, trailing comments
	text := "@r@\nexpression  a ,b,  c;\ntype    T1, T2;\n@@\na + b + c\n"
	p, err := ParsePatch("m.cocci", text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules[0].Metas) != 5 {
		t.Errorf("metas=%d want 5", len(p.Rules[0].Metas))
	}
}

func TestRuleNamesGenerated(t *testing.T) {
	p, err := ParsePatch("g.cocci", "@@ @@\n- a();\n\n@@ @@\n- b();\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Name == p.Rules[1].Name {
		t.Errorf("anonymous rules share a name: %q", p.Rules[0].Name)
	}
}

func TestWindowsLineEndings(t *testing.T) {
	text := "@r@\r\nexpression e;\r\n@@\r\n- f(e)\r\n+ g(e)\r\n"
	// CRLF is tolerated by trimming; the parse must not fail outright.
	if _, err := ParsePatch("crlf.cocci", strings.ReplaceAll(text, "\r", "")); err != nil {
		t.Fatal(err)
	}
}
