package smpl

import (
	"strings"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctoken"
)

// patternParseOpts is the dialect used for pattern bodies: a superset of
// everything the listings exercise.
func patternParseOpts(meta *MetaTable) cparse.Options {
	return cparse.Options{CPlusPlus: true, Std: 23, CUDA: true, Meta: meta}
}

// CompileBody classifies the rule body's lines, builds the minus slice,
// extracts plus blocks, and parses the slice into a pattern.
func CompileBody(file string, r *Rule) (*Pattern, error) {
	lines := strings.Split(r.Body, "\n")
	pat := &Pattern{LineMarks: make([]Mark, len(lines))}

	var minus []string
	for i, l := range lines {
		switch {
		case strings.HasPrefix(l, "+"):
			pat.LineMarks[i] = Plus
			pat.HasTransform = true
			minus = append(minus, "")
		case strings.HasPrefix(l, "-"):
			pat.LineMarks[i] = Minus
			pat.HasTransform = true
			minus = append(minus, " "+l[1:])
		case strings.HasPrefix(l, "*"):
			// Coccinelle context mode: a column-0 `*` marks the line as a
			// report anchor. It matches exactly like a context line (the
			// space keeps token columns aligned with the body), so a star
			// rule never transforms.
			pat.LineMarks[i] = Star
			pat.HasStar = true
			minus = append(minus, " "+l[1:])
		default:
			pat.LineMarks[i] = Ctx
			minus = append(minus, l)
		}
	}
	if pat.HasStar && pat.HasTransform {
		return nil, &SyntaxError{File: file, Msg: "rule " + r.Name +
			" mixes `*` context lines with -/+ transform lines; a rule either reports or rewrites"}
	}

	// Plus blocks: consecutive + lines share one anchor.
	i := 0
	for i < len(lines) {
		if pat.LineMarks[i] != Plus {
			i++
			continue
		}
		blk := PlusBlock{AnchorLine: -1, FollowLine: -1}
		for j := i - 1; j >= 0; j-- {
			if pat.LineMarks[j] != Plus && strings.TrimSpace(lines[j]) != "" {
				blk.AnchorLine = j
				break
			}
		}
		for i < len(lines) && pat.LineMarks[i] == Plus {
			blk.Text = append(blk.Text, stripPlus(lines[i]))
			i++
		}
		for j := i; j < len(lines); j++ {
			if pat.LineMarks[j] != Plus && strings.TrimSpace(lines[j]) != "" {
				blk.FollowLine = j
				break
			}
		}
		pat.PlusBlocks = append(pat.PlusBlocks, blk)
	}

	// Lex the minus slice once; every parse attempt shares the token file so
	// pattern node spans always index into pat.Toks.
	sliceText := strings.Join(minus, "\n")
	meta := NewMetaTable(r.Metas)
	lf, err := ctoken.Lex(file+"@"+r.Name, sliceText, ctoken.Options{SmPL: true, CUDAChevrons: true})
	if err != nil {
		return nil, &SyntaxError{File: file, Msg: "lexing rule " + r.Name + ": " + err.Error()}
	}
	pat.Toks = lf
	opts := patternParseOpts(meta)

	// Empty pattern (script-less rule with only + lines and no context)
	// cannot be matched.
	onlyEOF := len(lf.Tokens) == 1
	if onlyEOF {
		return nil, &SyntaxError{File: file, Msg: "rule " + r.Name + " has an empty match pattern"}
	}

	// Try: declaration-level, then statement-level, then expression. A
	// declaration parse that resorted to opaque fallbacks is not accepted
	// outright: the matcher has no semantics for OpaqueDecl, so a body like
	// `foo(x); return x;` (top-level-parseable only as opaque runs) must
	// classify as a statement sequence. Such a parse is kept only as a last
	// resort when the statement parse fails too.
	var declPat *Pattern
	if f, derr := cparse.ParseTokens(lf, opts); derr == nil && len(f.Decls) > 0 {
		opaque := false
		for _, d := range f.Decls {
			if _, ok := d.(*cast.OpaqueDecl); ok {
				opaque = true
				break
			}
		}
		if !opaque {
			pat.Kind = DeclPattern
			pat.Decls = f.Decls
			return pat, nil
		}
		cp := *pat
		cp.Kind = DeclPattern
		cp.Decls = f.Decls
		declPat = &cp
	}
	stmts, serr := cparse.ParseStmtsTokens(lf, opts)
	if serr == nil && len(stmts) > 0 {
		// A single expression statement without a terminating semicolon is
		// an expression pattern (Coccinelle distinguishes by the ';').
		// Likewise a disjunction whose branches are all bare expressions.
		if len(stmts) == 1 {
			if e, ok := bareExpr(lf, stmts[0]); ok {
				pat.Kind = ExprPattern
				pat.Expr = e
				return pat, nil
			}
		}
		if hasAdjacentDots(stmts) {
			return nil, &SyntaxError{File: file, Msg: "rule " + r.Name +
				": adjacent `...` in statement position; merge them into one dots (and one set of `when` constraints)"}
		}
		pat.Kind = StmtSeqPattern
		pat.Stmts = stmts
		return pat, nil
	}
	if declPat != nil {
		return declPat, nil
	}
	e, eerr := cparse.ParseExprTokens(lf, opts)
	if eerr != nil {
		msg := "cannot parse body of rule " + r.Name + ": " + eerr.Error()
		// The expression fallback's error is useless for statement-shaped
		// bodies; a `...` line means the author wrote a statement pattern,
		// so surface what the statement parser rejected (e.g. a
		// contradictory `when` combination) instead.
		if serr != nil && strings.Contains(r.Body, "...") {
			msg = "cannot parse body of rule " + r.Name + ": " + serr.Error()
		}
		return nil, &SyntaxError{File: file, Msg: msg}
	}
	pat.Kind = ExprPattern
	pat.Expr = e
	return pat, nil
}

// hasAdjacentDots reports consecutive statement dots in the pattern, at
// the top level or inside any compound: two `...` in a row have no defined
// meaning (which constraints govern the combined gap?), so the pattern is
// rejected rather than letting the engines guess differently.
func hasAdjacentDots(stmts []cast.Stmt) bool {
	adjacent := func(items []cast.Stmt) bool {
		for i := 1; i < len(items); i++ {
			_, a := items[i-1].(*cast.Dots)
			_, b := items[i].(*cast.Dots)
			if a && b {
				return true
			}
		}
		return false
	}
	if adjacent(stmts) {
		return true
	}
	found := false
	for _, s := range stmts {
		cast.Walk(s, func(n cast.Node) bool {
			if c, ok := n.(*cast.Compound); ok && adjacent(c.Items) {
				found = true
			}
			return !found
		})
	}
	return found
}

// stripPlus removes the leading '+' and at most one following space,
// preserving deeper indentation of the inserted line.
func stripPlus(l string) string {
	l = strings.TrimPrefix(l, "+")
	if strings.HasPrefix(l, " ") {
		l = l[1:]
	}
	return l
}

// bareExpr recognizes statement trees that are really expression patterns:
// an ExprStmt with no ';', or a disjunction of such branches.
func bareExpr(lf *ctoken.File, s cast.Stmt) (cast.Expr, bool) {
	switch x := s.(type) {
	case *cast.ExprStmt:
		_, last := x.Span()
		if lf.Tokens[last].Is(";") {
			return nil, false
		}
		return x.X, true
	case *cast.DisjStmt:
		d := &cast.DisjExpr{}
		for _, br := range x.Branches {
			if len(br) != 1 {
				return nil, false
			}
			e, ok := bareExpr(lf, br[0])
			if !ok {
				return nil, false
			}
			d.Branches = append(d.Branches, e)
		}
		f, l := x.Span()
		sp := cast.NewSpan(f, l)
		_ = sp
		dd := *d
		ddp := &dd
		setDisjSpan(ddp, f, l)
		return ddp, true
	}
	return nil, false
}

func setDisjSpan(d *cast.DisjExpr, f, l int) {
	type spanner interface{ SetSpan(int, int) }
	if s, ok := any(d).(spanner); ok {
		s.SetSpan(f, l)
	}
}
