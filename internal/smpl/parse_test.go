package smpl

import (
	"strings"
	"testing"

	"repro/internal/cast"
)

func parsePatchOK(t *testing.T, text string) *Patch {
	t.Helper()
	p, err := ParsePatch("test.cocci", text)
	if err != nil {
		t.Fatalf("ParsePatch: %v\npatch:\n%s", err, text)
	}
	return p
}

func TestParseAnonymousRule(t *testing.T) {
	p := parsePatchOK(t, "@@ @@\n- f(x);\n+ g(x);\n")
	if len(p.Rules) != 1 {
		t.Fatalf("rules=%d", len(p.Rules))
	}
	r := p.Rules[0]
	if r.Kind != MatchRule || r.Name == "" {
		t.Errorf("rule: %+v", r)
	}
	if !r.Pattern.HasTransform {
		t.Error("transform not detected")
	}
}

func TestParseNamedRuleWithMetas(t *testing.T) {
	text := `@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i<l; i++) { A }
`
	p := parsePatchOK(t, text)
	r := p.Rules[0]
	if r.Name != "p0" {
		t.Errorf("name=%q", r.Name)
	}
	if len(r.Metas) != 8 {
		t.Fatalf("metas=%d: %+v", len(r.Metas), r.Metas)
	}
	byName := map[string]*MetaDecl{}
	for _, m := range r.Metas {
		byName[m.Name] = m
	}
	if byName["T"].Kind != cast.MetaTypeKind {
		t.Errorf("T kind=%v", byName["T"].Kind)
	}
	if byName["k"].Kind != cast.MetaConstKind || len(byName["k"].Values) != 1 || byName["k"].Values[0] != "4" {
		t.Errorf("k decl=%+v", byName["k"])
	}
	if byName["A"].Kind != cast.MetaStmtKind {
		t.Errorf("A kind=%v", byName["A"].Kind)
	}
}

func TestParseRegexConstraint(t *testing.T) {
	text := "@r@\nidentifier f =~ \"kernel\";\n@@\nf(...)\n"
	p := parsePatchOK(t, text)
	m := p.Rules[0].Metas[0]
	if m.Regex == nil || !m.Regex.MatchString("my_kernel_fn") {
		t.Errorf("regex not working: %+v", m)
	}
}

func TestParseFreshIdentifier(t *testing.T) {
	text := `@r@
identifier f;
fresh identifier f512 = "avx512_" ## f;
@@
f(...)
`
	p := parsePatchOK(t, text)
	var fresh *MetaDecl
	for _, m := range p.Rules[0].Metas {
		if m.Name == "f512" {
			fresh = m
		}
	}
	if fresh == nil || fresh.Kind != cast.MetaFreshIdentKind {
		t.Fatalf("fresh decl missing: %+v", p.Rules[0].Metas)
	}
	if len(fresh.Fresh) != 2 || fresh.Fresh[0].Lit != "avx512_" || fresh.Fresh[1].Ref != "f" {
		t.Errorf("fresh parts: %+v", fresh.Fresh)
	}
}

func TestParseInheritedMetas(t *testing.T) {
	text := `@c@
type T;
function f;
parameter list PL;
@@
- T f(PL) { ... }

@d@
type c.T;
function c.f;
parameter list c.PL;
@@
- T f(PL) { ... }
`
	p := parsePatchOK(t, text)
	if len(p.Rules) != 2 {
		t.Fatalf("rules=%d", len(p.Rules))
	}
	d := p.Rules[1]
	for _, m := range d.Metas {
		if m.FromRule != "c" {
			t.Errorf("meta %q FromRule=%q want c", m.Name, m.FromRule)
		}
	}
}

func TestParseDependsOn(t *testing.T) {
	text := "@rl@\n@@\n- x = 1;\n\n@ah depends on rl@\n@@\n- y = 2;\n"
	p := parsePatchOK(t, text)
	ah := p.Rules[1]
	if ah.Depends == nil || ah.Depends.Name != "rl" {
		t.Fatalf("depends: %+v", ah.Depends)
	}
	if !ah.Depends.Eval(map[string]bool{"rl": true}) {
		t.Error("depends should hold when rl matched")
	}
	if ah.Depends.Eval(map[string]bool{}) {
		t.Error("depends should fail when rl did not match")
	}
}

func TestParseDependsExpr(t *testing.T) {
	d, err := parseDepExpr("a && !b || c")
	if err != nil {
		t.Fatal(err)
	}
	// || binds loosest: (a && !b) || c
	if len(d.Or) != 2 {
		t.Fatalf("expr: %+v", d)
	}
	if !d.Eval(map[string]bool{"c": true}) {
		t.Error("c alone should satisfy")
	}
	if !d.Eval(map[string]bool{"a": true}) {
		t.Error("a && !b should satisfy when only a matched")
	}
	if d.Eval(map[string]bool{"a": true, "b": true}) {
		t.Error("a && !b must fail when b matched")
	}
}

func TestParseScriptRule(t *testing.T) {
	text := `@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn]);
`
	p := parsePatchOK(t, text)
	if len(p.Rules) != 3 {
		t.Fatalf("rules=%d", len(p.Rules))
	}
	init := p.Rules[0]
	if init.Kind != InitializeRule || init.Lang != "python" {
		t.Errorf("init rule: %+v", init)
	}
	if !strings.Contains(init.Code, "C2HF") {
		t.Errorf("init code=%q", init.Code)
	}
	script := p.Rules[2]
	if script.Kind != ScriptRule || script.Name != "cf2hf" {
		t.Errorf("script rule: %+v", script)
	}
	if len(script.Inputs) != 1 || script.Inputs[0].Local != "fn" || script.Inputs[0].Rule != "cfe" {
		t.Errorf("inputs: %+v", script.Inputs)
	}
	if len(script.Outputs) != 1 || script.Outputs[0] != "nf" {
		t.Errorf("outputs: %+v", script.Outputs)
	}
}

func TestPatternKinds(t *testing.T) {
	cases := []struct {
		body string
		meta string
		want PatternKind
	}{
		{"- a[x][y][z]\n+ a[x, y, z]", "symbol a;\nexpression x,y,z;", ExprPattern},
		{"- f(x);", "identifier f;\nexpression x;", StmtSeqPattern},
		{"T f(PL) { SL }", "type T;\nidentifier f;\nparameter list PL;\nstatement list SL;", DeclPattern},
		{"#include <omp.h>", "", DeclPattern},
	}
	for _, c := range cases {
		text := "@r@\n" + c.meta + "\n@@\n" + c.body + "\n"
		p := parsePatchOK(t, text)
		if got := p.Rules[0].Pattern.Kind; got != c.want {
			t.Errorf("body %q: kind=%v want %v", c.body, got, c.want)
		}
	}
}

func TestPlusBlockAnchors(t *testing.T) {
	text := `@r@
type T;
identifier f;
parameter list PL;
statement list SL;
@@
+ T f512 (PL) { SL }
T f (PL) { SL }
`
	p, err := ParsePatch("t.cocci", text)
	if err != nil {
		t.Fatalf("%v", err)
	}
	pat := p.Rules[0].Pattern
	if len(pat.PlusBlocks) != 1 {
		t.Fatalf("blocks=%d", len(pat.PlusBlocks))
	}
	b := pat.PlusBlocks[0]
	if b.AnchorLine != -1 || b.FollowLine != 1 {
		t.Errorf("block anchors: %+v", b)
	}

	text2 := `@@ @@
#include <omp.h>
+ #include <likwid-marker.h>
`
	p2 := parsePatchOK(t, text2)
	b2 := p2.Rules[0].Pattern.PlusBlocks[0]
	if b2.AnchorLine != 0 {
		t.Errorf("anchor=%d want 0", b2.AnchorLine)
	}
}

func TestTokenMarks(t *testing.T) {
	text := `@@ @@
for (;; i
- +=k
+ ++
) x();
`
	p := parsePatchOK(t, text)
	pat := p.Rules[0].Pattern
	// token "+=" must be on a minus line
	foundMinus := false
	for i, tok := range pat.Toks.Tokens {
		if tok.Text == "+=" && pat.TokenMark(i) == Minus {
			foundMinus = true
		}
	}
	if !foundMinus {
		t.Error("minus mark not found for +=")
	}
}

func TestLineMarksClassification(t *testing.T) {
	text := "@@ @@\n- old();\n+ new();\nkept();\n"
	p := parsePatchOK(t, text)
	pat := p.Rules[0].Pattern
	if pat.LineMarks[0] != Minus || pat.LineMarks[1] != Plus || pat.LineMarks[2] != Ctx {
		t.Errorf("marks=%v", pat.LineMarks)
	}
}

func TestSpatchOptionLinesIgnored(t *testing.T) {
	text := "#spatch --c++=23\n@tomultiindex@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n"
	p := parsePatchOK(t, text)
	if p.Rules[0].Name != "tomultiindex" {
		t.Errorf("name=%q", p.Rules[0].Name)
	}
}

func TestBadPatchErrors(t *testing.T) {
	cases := []string{
		"not a rule",
		"@r@\nbogus kind x;\n@@\nf();\n",
		"@r@\n@@\n",
		"@r@ extra stuff\n@@\nf();\n",
	}
	for _, c := range cases {
		if _, err := ParsePatch("bad.cocci", c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

// A contradictory `when` combination is reported as such, not as the
// expression fallback's generic "trailing tokens" error.
func TestWhenConflictErrorSurfaces(t *testing.T) {
	_, err := ParsePatch("w.cocci", "@r@\n@@\na();\n... when any when != bad()\nb();\n")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !strings.Contains(err.Error(), "`when any` contradicts") {
		t.Errorf("error does not explain the when conflict: %v", err)
	}
}
