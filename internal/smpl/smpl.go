// Package smpl parses semantic patches written in the Semantic Patch
// Language (SmPL) of Coccinelle: rules delimited by @name@ ... @@ headers,
// metavariable declarations, transformation bodies annotated with - and +
// line marks, script rules bound to a restricted Python interpreter, rule
// dependencies, and cross-rule metavariable inheritance.
package smpl

import (
	"fmt"
	"regexp"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// Patch is a parsed semantic patch file.
type Patch struct {
	Name string
	// Src is the raw patch text the rules were parsed from; the persistent
	// result cache keys on its content hash, so editing a patch invalidates
	// every result cached under it.
	Src   string
	Rules []*Rule
	// Virtuals are names declared with `virtual x;` at the top of the
	// patch: dependency atoms whose truth the caller sets (like spatch -D).
	Virtuals []string
}

// HasChecks reports whether any rule of the patch is a match-only check
// rule — the patches `gocci --check` runs.
func (p *Patch) HasChecks() bool {
	for _, r := range p.Rules {
		if r.IsCheck() {
			return true
		}
	}
	return false
}

// RuleKind discriminates rule flavours.
type RuleKind uint8

// Rule kinds.
const (
	MatchRule RuleKind = iota
	ScriptRule
	InitializeRule
	FinalizeRule
)

func (k RuleKind) String() string {
	switch k {
	case MatchRule:
		return "match"
	case ScriptRule:
		return "script"
	case InitializeRule:
		return "initialize"
	case FinalizeRule:
		return "finalize"
	}
	return "?"
}

// Rule is one SmPL rule.
type Rule struct {
	Name    string
	Kind    RuleKind
	Lang    string // script language ("python", "go")
	Depends *DepExpr
	Metas   []*MetaDecl

	// Check is the `// gocci:check` metadata header preceding the rule, nil
	// for ordinary rules. A rule carrying one is match-only: it reports
	// findings and never rewrites.
	Check *CheckMeta

	// Match rules.
	Body    string // raw body text (with -/+/* marks)
	Pattern *Pattern

	// Script rules.
	Inputs  []ScriptInput
	Outputs []string
	Code    string
}

// CheckMeta is the metadata of one check rule, written as a
// `// gocci:check id=... severity=... msg="..."` comment line immediately
// before the rule header. Msg may reference the rule's metavariables; the
// engine interpolates their bound text into the reported message.
type CheckMeta struct {
	ID       string
	Severity string // "error", "warning", or "info"
	Msg      string
}

// IsCheck reports whether the rule is a match-only check rule: it carries
// check metadata, or its body contains `*` star-lines. Check rules match
// and report but never transform.
func (r *Rule) IsCheck() bool {
	if r.Kind != MatchRule {
		return false
	}
	if r.Check != nil {
		return true
	}
	return r.Pattern != nil && r.Pattern.HasStar
}

// ScriptInput is one `local << rule.remote;` binding of a script rule.
type ScriptInput struct {
	Local  string
	Rule   string
	Remote string
}

// MetaDecl declares one metavariable.
type MetaDecl struct {
	Kind  cast.MetaKind
	Name  string // local name
	Rule  string // owning rule name (set by the parser)
	Regex *regexp.Regexp
	// Values restricts constants/identifiers to an explicit set, e.g.
	// constant k={4}; or identifier c = {i,j};.
	Values []string
	// Fresh identifier construction: literal and reference parts joined by ##.
	Fresh []FreshPart
	// FromRule marks an inherited metavariable (`type c.T;` binds local T
	// from rule c).
	FromRule string
	// RemoteName is the name in the source rule (usually same as Name).
	RemoteName string
}

// FreshPart is one component of a fresh identifier seed.
type FreshPart struct {
	Lit string // literal text, or
	Ref string // metavariable reference
}

// DepExpr is a rule dependency expression: name, !name, conjunction,
// disjunction.
type DepExpr struct {
	Name    string
	Not     bool
	And, Or []*DepExpr
}

// Eval evaluates the dependency against the set of rules that matched.
func (d *DepExpr) Eval(matched map[string]bool) bool {
	if d == nil {
		return true
	}
	if len(d.And) > 0 {
		for _, c := range d.And {
			if !c.Eval(matched) {
				return false
			}
		}
		return true
	}
	if len(d.Or) > 0 {
		for _, c := range d.Or {
			if c.Eval(matched) {
				return true
			}
		}
		return false
	}
	ok := matched[d.Name]
	if d.Not {
		return !ok
	}
	return ok
}

// Mark classifies a body line.
type Mark uint8

// Line marks.
const (
	Ctx Mark = iota
	Minus
	Plus
	// Star marks Coccinelle context-mode lines (`*` in column 0): the line
	// participates in matching exactly like a context line, but flags the
	// rule as match-only and its tokens as report anchors.
	Star
)

// PlusBlock is a group of consecutive + lines with its anchor in the
// minus-slice.
type PlusBlock struct {
	// AnchorLine is the 0-based body line index of the nearest preceding
	// non-plus line; -1 if the block starts the body.
	AnchorLine int
	// FollowLine is the 0-based body line index of the nearest following
	// non-plus line; -1 if the block ends the body.
	FollowLine int
	// Text lines with the leading '+' stripped.
	Text []string
}

// PatternKind classifies what a rule body matches.
type PatternKind uint8

// Pattern kinds.
const (
	ExprPattern PatternKind = iota
	StmtSeqPattern
	DeclPattern
)

func (k PatternKind) String() string {
	switch k {
	case ExprPattern:
		return "expression"
	case StmtSeqPattern:
		return "statements"
	case DeclPattern:
		return "declarations"
	}
	return "?"
}

// Pattern is a compiled rule body.
type Pattern struct {
	Kind  PatternKind
	Expr  cast.Expr
	Stmts []cast.Stmt
	Decls []cast.Decl
	// Toks is the lexed minus-slice; pattern node spans index into it.
	Toks *ctoken.File
	// LineMarks maps 0-based body line index to its mark.
	LineMarks []Mark
	// Plus blocks anchored to body lines.
	PlusBlocks []PlusBlock
	// HasTransform is true when the body contains - or + lines.
	HasTransform bool
	// HasStar is true when the body contains `*` star-lines (context mode).
	// Star-lines and transform lines are mutually exclusive per rule.
	HasStar bool
}

// TokenMark returns the mark of the body line on which pattern token i sits.
func (p *Pattern) TokenMark(i int) Mark {
	if i < 0 || i >= len(p.Toks.Tokens) {
		return Ctx
	}
	line := p.Toks.Tokens[i].Pos.Line - 1
	if line < 0 || line >= len(p.LineMarks) {
		return Ctx
	}
	return p.LineMarks[line]
}

// FirstStarToken returns the index of the first pattern token sitting on a
// star-line, or -1 when the body has none. It is the default report anchor
// of a check rule without position metavariables.
func (p *Pattern) FirstStarToken() int {
	if !p.HasStar || p.Toks == nil {
		return -1
	}
	for i := range p.Toks.Tokens {
		if p.TokenMark(i) == Star {
			return i
		}
	}
	return -1
}

// MetaTable implements cparse.MetaTable over a rule's declarations.
type MetaTable struct {
	byName map[string]*MetaDecl
}

// NewMetaTable builds the lookup table for a declaration list.
func NewMetaTable(decls []*MetaDecl) *MetaTable {
	t := &MetaTable{byName: map[string]*MetaDecl{}}
	for _, d := range decls {
		t.byName[d.Name] = d
	}
	return t
}

// Lookup resolves a metavariable name to its kind.
func (t *MetaTable) Lookup(name string) (cast.MetaKind, bool) {
	d, ok := t.byName[name]
	if !ok {
		return 0, false
	}
	return d.Kind, true
}

// Decl returns the full declaration for a name.
func (t *MetaTable) Decl(name string) (*MetaDecl, bool) {
	d, ok := t.byName[name]
	return d, ok
}

// A SyntaxError reports a malformed semantic patch.
type SyntaxError struct {
	File string
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}
