// SmPL rendering: the inverse of ParsePatch. Render prints a parsed patch
// back to .cocci text such that parsing the rendered text yields a
// structurally identical patch, and rendering that re-parse reproduces the
// rendered text byte-for-byte (the parse→print→parse fixpoint). The renderer
// is what lets the engine *emit* patches — gocci-infer assembles Rule values
// programmatically and goes through BuildPatch so the patch it verifies is
// the very text it prints.

package smpl

import (
	"fmt"
	"strings"

	"repro/internal/cast"
)

// Render prints the patch as .cocci text. The output is canonical: metavar
// declarations one per line, rule headers in `@name@`/`@name depends on X@`
// form, virtuals first, bodies verbatim. Rendering is a pure function of the
// parsed structure, so Render(ParsePatch(Render(p))) == Render(p).
func Render(p *Patch) string {
	var sb strings.Builder
	if len(p.Virtuals) > 0 {
		sb.WriteString("virtual ")
		sb.WriteString(strings.Join(p.Virtuals, ", "))
		sb.WriteString(";\n\n")
	}
	for i, r := range p.Rules {
		if i > 0 {
			sb.WriteString("\n")
		}
		renderRule(&sb, r)
	}
	return sb.String()
}

func renderRule(sb *strings.Builder, r *Rule) {
	if r.Check != nil {
		// Canonical field order; msg always quoted so interpolation markers
		// and spaces survive the parse→print→parse fixpoint.
		fmt.Fprintf(sb, "// gocci:check id=%s severity=%s msg=%q\n",
			r.Check.ID, r.Check.Severity, r.Check.Msg)
	}
	sb.WriteString("@")
	switch r.Kind {
	case ScriptRule:
		sb.WriteString("script:")
		sb.WriteString(r.Lang)
		if r.Name != "" {
			sb.WriteString(" ")
			sb.WriteString(r.Name)
		}
	case InitializeRule:
		sb.WriteString("initialize:")
		sb.WriteString(r.Lang)
	case FinalizeRule:
		sb.WriteString("finalize:")
		sb.WriteString(r.Lang)
	default:
		sb.WriteString(r.Name)
	}
	if r.Depends != nil {
		sb.WriteString(" depends on ")
		sb.WriteString(RenderDep(r.Depends))
	}
	sb.WriteString("@\n")

	switch r.Kind {
	case ScriptRule:
		for _, in := range r.Inputs {
			fmt.Fprintf(sb, "%s << %s.%s;\n", in.Local, in.Rule, in.Remote)
		}
		for _, out := range r.Outputs {
			sb.WriteString(out)
			sb.WriteString(";\n")
		}
	default:
		for _, m := range r.Metas {
			sb.WriteString(RenderMeta(m))
			sb.WriteString("\n")
		}
	}
	sb.WriteString("@@\n")

	body := r.Body
	if r.Kind != MatchRule {
		body = r.Code
	}
	sb.WriteString(body)
	sb.WriteString("\n")
}

// RenderMeta prints one metavariable declaration, terminated with ';'.
func RenderMeta(m *MetaDecl) string {
	var sb strings.Builder
	sb.WriteString(m.Kind.String())
	sb.WriteString(" ")
	if m.FromRule != "" {
		sb.WriteString(m.FromRule)
		sb.WriteString(".")
		sb.WriteString(m.RemoteName)
	} else {
		sb.WriteString(m.Name)
	}
	switch {
	case m.Regex != nil:
		fmt.Fprintf(&sb, " =~ %q", m.Regex.String())
	case len(m.Values) > 0:
		sb.WriteString(" = {")
		sb.WriteString(strings.Join(m.Values, ","))
		sb.WriteString("}")
	case len(m.Fresh) > 0:
		sb.WriteString(" = ")
		parts := make([]string, 0, len(m.Fresh))
		for _, p := range m.Fresh {
			if p.Ref != "" {
				parts = append(parts, p.Ref)
			} else {
				parts = append(parts, fmt.Sprintf("%q", p.Lit))
			}
		}
		sb.WriteString(strings.Join(parts, " ## "))
	}
	sb.WriteString(";")
	return sb.String()
}

// RenderDep prints a dependency expression in the `depends on` syntax.
// Composite children are parenthesized, so precedence survives re-parsing.
func RenderDep(d *DepExpr) string {
	if d == nil {
		return ""
	}
	child := func(c *DepExpr) string {
		if len(c.And) > 0 || len(c.Or) > 0 {
			return "(" + RenderDep(c) + ")"
		}
		return RenderDep(c)
	}
	switch {
	case len(d.And) > 0:
		parts := make([]string, len(d.And))
		for i, c := range d.And {
			parts[i] = child(c)
		}
		return strings.Join(parts, " && ")
	case len(d.Or) > 0:
		parts := make([]string, len(d.Or))
		for i, c := range d.Or {
			parts[i] = child(c)
		}
		return strings.Join(parts, " || ")
	case d.Not:
		return "!" + d.Name
	default:
		return d.Name
	}
}

// BuildPatch assembles a patch from programmatically constructed rules: it
// renders them to .cocci text and parses that text, so the returned patch's
// Src is exactly what Render prints and the rule bodies have been compiled
// by the same front end every hand-written patch goes through. Rules only
// need Name, Kind, Lang, Depends, Metas, and Body/Code set.
func BuildPatch(name string, virtuals []string, rules []*Rule) (*Patch, error) {
	text := Render(&Patch{Name: name, Virtuals: virtuals, Rules: rules})
	return ParsePatch(name, text)
}

// NewMetaDecl constructs a plain metavariable declaration of the given kind
// (the constructor gocci-infer uses for its typed holes).
func NewMetaDecl(kind cast.MetaKind, name string) *MetaDecl {
	return &MetaDecl{Kind: kind, Name: name, RemoteName: name}
}
