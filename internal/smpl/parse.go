package smpl

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/cast"
)

// checkPrefix introduces a check metadata header comment line.
const checkPrefix = "// gocci:check"

// ParsePatch parses the text of a .cocci semantic patch file.
func ParsePatch(name, text string) (*Patch, error) {
	p := &Patch{Name: name, Src: text}
	lines := strings.Split(text, "\n")
	i := 0
	anon := 0
	var pendingCheck *CheckMeta
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		if isCheckLine(line) {
			if pendingCheck != nil {
				return nil, &SyntaxError{File: name, Line: i + 1, Msg: "duplicate gocci:check header; one per rule"}
			}
			cm, err := parseCheckHeader(name, i+1, line)
			if err != nil {
				return nil, err
			}
			pendingCheck = cm
			i++
			continue
		}
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			// blank, comment, or a "#spatch --c++" option line between rules
			i++
			continue
		}
		// Top-level virtual rule declarations: names settable from the
		// command line / engine options that dependencies can test, the
		// mechanism behind conditionally triggered patches (the paper's
		// compiler-bug workaround is enabled per compiler version this way).
		if strings.HasPrefix(line, "virtual ") || line == "virtual" {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "virtual"))
			for _, n := range strings.Split(rest, ",") {
				n = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(n), ";"))
				if n != "" {
					p.Virtuals = append(p.Virtuals, n)
				}
			}
			i++
			continue
		}
		if !strings.HasPrefix(line, "@") {
			return nil, &SyntaxError{File: name, Line: i + 1, Msg: fmt.Sprintf("expected rule header, found %q", line)}
		}
		rule, next, err := parseRule(name, lines, i, &anon)
		if err != nil {
			return nil, err
		}
		for _, m := range rule.Metas {
			m.Rule = rule.Name
		}
		if pendingCheck != nil {
			if rule.Kind != MatchRule {
				return nil, &SyntaxError{File: name, Line: i + 1,
					Msg: "gocci:check header must precede a match rule, not a " + rule.Kind.String() + " rule"}
			}
			rule.Check = pendingCheck
			pendingCheck = nil
		}
		p.Rules = append(p.Rules, rule)
		i = next
	}
	if pendingCheck != nil {
		return nil, &SyntaxError{File: name, Line: len(lines), Msg: "gocci:check header with no rule following it"}
	}
	if len(p.Rules) == 0 {
		return nil, &SyntaxError{File: name, Line: 1, Msg: "no rules found"}
	}
	// Compile match rule bodies.
	for _, r := range p.Rules {
		if r.Kind != MatchRule {
			continue
		}
		pat, err := CompileBody(name, r)
		if err != nil {
			return nil, err
		}
		r.Pattern = pat
		if r.Check != nil && pat.HasTransform {
			return nil, &SyntaxError{File: name,
				Msg: "rule " + r.Name + " carries a gocci:check header but has -/+ transform lines; check rules are match-only"}
		}
	}
	return p, nil
}

// isCheckLine recognizes a `// gocci:check ...` metadata header comment.
func isCheckLine(l string) bool {
	return l == checkPrefix || strings.HasPrefix(l, checkPrefix+" ")
}

// parseCheckHeader parses `// gocci:check id=... severity=... msg="..."`.
// Fields may appear in any order; id is required, severity defaults to
// "warning", msg to "" (the engine then synthesizes a message).
func parseCheckHeader(file string, lineNo int, line string) (*CheckMeta, error) {
	cm := &CheckMeta{Severity: "warning"}
	rest := strings.TrimSpace(strings.TrimPrefix(line, checkPrefix))
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return nil, &SyntaxError{File: file, Line: lineNo, Msg: fmt.Sprintf("malformed gocci:check field %q (want key=value)", rest)}
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, `"`) {
			// Quoted value: find the closing quote, honoring escapes.
			end := -1
			for j := 1; j < len(rest); j++ {
				if rest[j] == '\\' {
					j++
					continue
				}
				if rest[j] == '"' {
					end = j
					break
				}
			}
			if end < 0 {
				return nil, &SyntaxError{File: file, Line: lineNo, Msg: "unterminated quoted value in gocci:check header"}
			}
			uq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, &SyntaxError{File: file, Line: lineNo, Msg: fmt.Sprintf("bad quoted value in gocci:check header: %v", err)}
			}
			val = uq
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			sp := strings.IndexAny(rest, " \t")
			if sp < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:sp], strings.TrimSpace(rest[sp+1:])
			}
		}
		switch key {
		case "id":
			cm.ID = val
		case "severity":
			switch val {
			case "error", "warning", "info":
				cm.Severity = val
			default:
				return nil, &SyntaxError{File: file, Line: lineNo,
					Msg: fmt.Sprintf("gocci:check severity %q is not error, warning, or info", val)}
			}
		case "msg":
			cm.Msg = val
		default:
			return nil, &SyntaxError{File: file, Line: lineNo, Msg: fmt.Sprintf("unknown gocci:check field %q", key)}
		}
	}
	if cm.ID == "" {
		return nil, &SyntaxError{File: file, Line: lineNo, Msg: "gocci:check header is missing id="}
	}
	if !checkIDRe.MatchString(cm.ID) {
		return nil, &SyntaxError{File: file, Line: lineNo,
			Msg: fmt.Sprintf("gocci:check id %q may only contain letters, digits, '.', '_', and '-'", cm.ID)}
	}
	return cm, nil
}

// checkIDRe bounds check ids to SARIF-friendly rule-id characters; the
// renderer prints ids unquoted, so spaces and '=' must stay out.
var checkIDRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// parseRule parses one rule starting at line i; returns the rule and the
// index of the first line after its body.
func parseRule(file string, lines []string, i int, anon *int) (*Rule, int, error) {
	header := strings.TrimSpace(lines[i])
	// header: @NAME@ [rest-of-line may contain @@]
	if len(header) < 2 || header[0] != '@' {
		return nil, 0, &SyntaxError{File: file, Line: i + 1, Msg: "malformed rule header"}
	}
	close1 := strings.Index(header[1:], "@")
	if close1 < 0 {
		return nil, 0, &SyntaxError{File: file, Line: i + 1, Msg: "unterminated rule header"}
	}
	headText := header[1 : 1+close1]
	rest := strings.TrimSpace(header[2+close1:])

	r := &Rule{Kind: MatchRule}
	if err := parseHeader(file, i+1, headText, r); err != nil {
		return nil, 0, err
	}
	if r.Name == "" {
		*anon++
		r.Name = fmt.Sprintf("rule%d", *anon)
	}

	// Declaration section: until a "@@" delimiter.
	var declLines []string
	i++
	if rest == "@@" {
		// inline empty declaration section: "@x@ @@"
	} else if rest != "" {
		return nil, 0, &SyntaxError{File: file, Line: i, Msg: fmt.Sprintf("unexpected text after header: %q", rest)}
	} else {
		for {
			if i >= len(lines) {
				return nil, 0, &SyntaxError{File: file, Line: i, Msg: "unterminated metavariable section"}
			}
			l := strings.TrimSpace(lines[i])
			if l == "@@" {
				i++
				break
			}
			declLines = append(declLines, lines[i])
			i++
		}
	}
	if err := parseDecls(file, declLines, r); err != nil {
		return nil, 0, err
	}

	// Body: until the next rule header line (or the gocci:check header of
	// the next rule) or EOF.
	var body []string
	for i < len(lines) {
		t := strings.TrimSpace(lines[i])
		if strings.HasPrefix(t, "@") && isHeaderLine(t) {
			break
		}
		if isCheckLine(t) {
			break
		}
		body = append(body, lines[i])
		i++
	}
	// Trim trailing blank lines.
	for len(body) > 0 && strings.TrimSpace(body[len(body)-1]) == "" {
		body = body[:len(body)-1]
	}
	raw := strings.Join(body, "\n")
	if r.Kind == MatchRule {
		r.Body = raw
	} else {
		r.Code = raw
	}
	return r, i, nil
}

// isHeaderLine recognizes "@...@" and "@...@ @@" shapes.
func isHeaderLine(l string) bool {
	if !strings.HasPrefix(l, "@") || len(l) < 2 {
		return false
	}
	close1 := strings.Index(l[1:], "@")
	if close1 < 0 {
		return false
	}
	rest := strings.TrimSpace(l[2+close1:])
	return rest == "" || rest == "@@"
}

// parseHeader interprets the text between the first pair of @s.
func parseHeader(file string, lineNo int, head string, r *Rule) error {
	head = strings.TrimSpace(head)
	switch {
	case strings.HasPrefix(head, "script:"):
		r.Kind = ScriptRule
		rest := strings.TrimPrefix(head, "script:")
		parts := strings.Fields(rest)
		if len(parts) == 0 {
			return &SyntaxError{File: file, Line: lineNo, Msg: "script rule missing language"}
		}
		r.Lang = parts[0]
		parts = parts[1:]
		if len(parts) > 0 && parts[0] != "depends" {
			r.Name = parts[0]
			parts = parts[1:]
		}
		return parseDependsTail(file, lineNo, parts, r)
	case strings.HasPrefix(head, "initialize:"):
		r.Kind = InitializeRule
		r.Lang = strings.TrimSpace(strings.TrimPrefix(head, "initialize:"))
		return nil
	case strings.HasPrefix(head, "finalize:"):
		r.Kind = FinalizeRule
		r.Lang = strings.TrimSpace(strings.TrimPrefix(head, "finalize:"))
		return nil
	default:
		parts := strings.Fields(head)
		if len(parts) > 0 && parts[0] != "depends" {
			r.Name = parts[0]
			parts = parts[1:]
		}
		return parseDependsTail(file, lineNo, parts, r)
	}
}

func parseDependsTail(file string, lineNo int, parts []string, r *Rule) error {
	if len(parts) == 0 {
		return nil
	}
	if parts[0] != "depends" || len(parts) < 3 || parts[1] != "on" {
		return &SyntaxError{File: file, Line: lineNo, Msg: fmt.Sprintf("malformed rule header tail: %v", parts)}
	}
	dep, err := parseDepExpr(strings.Join(parts[2:], " "))
	if err != nil {
		return &SyntaxError{File: file, Line: lineNo, Msg: err.Error()}
	}
	r.Depends = dep
	return nil
}

// parseDepExpr parses "a && b", "a || b", "!a", "a".
func parseDepExpr(s string) (*DepExpr, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("empty dependency expression")
	}
	if parts := splitTop(s, "||"); len(parts) > 1 {
		d := &DepExpr{}
		for _, p := range parts {
			c, err := parseDepExpr(p)
			if err != nil {
				return nil, err
			}
			d.Or = append(d.Or, c)
		}
		return d, nil
	}
	if parts := splitTop(s, "&&"); len(parts) > 1 {
		d := &DepExpr{}
		for _, p := range parts {
			c, err := parseDepExpr(p)
			if err != nil {
				return nil, err
			}
			d.And = append(d.And, c)
		}
		return d, nil
	}
	if strings.HasPrefix(s, "!") {
		return &DepExpr{Name: strings.TrimSpace(s[1:]), Not: true}, nil
	}
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		return parseDepExpr(s[1 : len(s)-1])
	}
	if !identRe.MatchString(s) {
		return nil, fmt.Errorf("bad dependency name %q", s)
	}
	return &DepExpr{Name: s}, nil
}

var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z_0-9]*$`)

func splitTop(s, sep string) []string {
	depth := 0
	var parts []string
	last := 0
	for i := 0; i+len(sep) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && s[i:i+len(sep)] == sep {
			parts = append(parts, s[last:i])
			last = i + len(sep)
		}
	}
	parts = append(parts, s[last:])
	if len(parts) == 1 {
		return parts
	}
	return parts
}

// parseDecls parses the metavariable declaration section (or script I/O
// bindings for script rules).
func parseDecls(file string, declLines []string, r *Rule) error {
	text := strings.Join(declLines, "\n")
	// Split on ';' at top level.
	var stmts []string
	depth := 0
	last := 0
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		case '"':
			// skip string literal
			for i++; i < len(text) && text[i] != '"'; i++ {
				if text[i] == '\\' {
					i++
				}
			}
		case ';':
			if depth == 0 {
				stmts = append(stmts, text[last:i])
				last = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(text[last:]); rest != "" {
		return &SyntaxError{File: file, Line: 0, Msg: fmt.Sprintf("unterminated declaration %q", rest)}
	}
	for _, st := range stmts {
		st = strings.TrimSpace(st)
		if st == "" || strings.HasPrefix(st, "//") {
			continue
		}
		if r.Kind == ScriptRule || r.Kind == InitializeRule || r.Kind == FinalizeRule {
			if err := parseScriptDecl(file, st, r); err != nil {
				return err
			}
			continue
		}
		if err := parseMetaDecl(file, st, r); err != nil {
			return err
		}
	}
	return nil
}

// parseScriptDecl handles `local << rule.remote;` and bare output names.
func parseScriptDecl(file, st string, r *Rule) error {
	if idx := strings.Index(st, "<<"); idx >= 0 {
		local := strings.TrimSpace(st[:idx])
		src := strings.TrimSpace(st[idx+2:])
		dot := strings.Index(src, ".")
		if dot < 0 {
			return &SyntaxError{File: file, Msg: fmt.Sprintf("script input %q must be rule.name", st)}
		}
		r.Inputs = append(r.Inputs, ScriptInput{Local: local, Rule: src[:dot], Remote: src[dot+1:]})
		return nil
	}
	name := strings.TrimSpace(st)
	if !identRe.MatchString(name) {
		return &SyntaxError{File: file, Msg: fmt.Sprintf("bad script output name %q", name)}
	}
	r.Outputs = append(r.Outputs, name)
	return nil
}

// metaKindWords maps leading keywords to metavariable kinds, longest phrase
// first.
var metaKindWords = []struct {
	words string
	kind  cast.MetaKind
}{
	{"fresh identifier", cast.MetaFreshIdentKind},
	{"parameter list", cast.MetaParamListKind},
	{"expression list", cast.MetaExprListKind},
	{"statement list", cast.MetaStmtListKind},
	{"identifier", cast.MetaIdentKind},
	{"expression", cast.MetaExprKind},
	{"statement", cast.MetaStmtKind},
	{"constant", cast.MetaConstKind},
	{"parameter", cast.MetaParamListKind},
	{"position", cast.MetaPosKind},
	{"pragmainfo", cast.MetaPragmaInfoKind},
	{"function", cast.MetaFuncKind},
	{"symbol", cast.MetaSymbolKind},
	{"type", cast.MetaTypeKind},
}

// parseMetaDecl parses one metavariable declaration statement.
func parseMetaDecl(file, st string, r *Rule) error {
	var kind cast.MetaKind
	found := false
	for _, kw := range metaKindWords {
		if strings.HasPrefix(st, kw.words+" ") || st == kw.words {
			kind = kw.kind
			st = strings.TrimSpace(strings.TrimPrefix(st, kw.words))
			found = true
			break
		}
	}
	if !found {
		return &SyntaxError{File: file, Msg: fmt.Sprintf("unknown metavariable kind in %q", st)}
	}
	// Comma-split declarators at top level (respects {..} and "..").
	for _, decl := range splitDeclarators(st) {
		decl = strings.TrimSpace(decl)
		if decl == "" {
			continue
		}
		md, err := parseOneMeta(file, kind, decl)
		if err != nil {
			return err
		}
		r.Metas = append(r.Metas, md)
	}
	return nil
}

func splitDeclarators(s string) []string {
	var parts []string
	depth := 0
	last := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{', '(', '[':
			depth++
		case '}', ')', ']':
			depth--
		case '"':
			for i++; i < len(s) && s[i] != '"'; i++ {
				if s[i] == '\\' {
					i++
				}
			}
		case ',':
			if depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	parts = append(parts, s[last:])
	return parts
}

// parseOneMeta parses one declarator: NAME, rule.NAME, NAME =~ "re",
// NAME = {a,b}, NAME = "lit" ## ref.
func parseOneMeta(file string, kind cast.MetaKind, decl string) (*MetaDecl, error) {
	md := &MetaDecl{Kind: kind}
	name := decl
	rest := ""
	if i := strings.Index(decl, "=~"); i >= 0 {
		name = strings.TrimSpace(decl[:i])
		reStr := strings.TrimSpace(decl[i+2:])
		reStr = strings.Trim(reStr, `"`)
		re, err := regexp.Compile(reStr)
		if err != nil {
			return nil, &SyntaxError{File: file, Msg: fmt.Sprintf("bad regex in %q: %v", decl, err)}
		}
		md.Regex = re
	} else if i := strings.Index(decl, "="); i >= 0 {
		name = strings.TrimSpace(decl[:i])
		rest = strings.TrimSpace(decl[i+1:])
	}
	name = strings.TrimSpace(name)

	// Inherited metavariable: rule.name declares local `name`.
	if dot := strings.Index(name, "."); dot >= 0 {
		md.FromRule = name[:dot]
		md.RemoteName = name[dot+1:]
		md.Name = name[dot+1:]
	} else {
		md.Name = name
		md.RemoteName = name
	}
	if !identRe.MatchString(md.Name) {
		return nil, &SyntaxError{File: file, Msg: fmt.Sprintf("bad metavariable name %q", name)}
	}

	if rest == "" {
		return md, nil
	}
	if strings.HasPrefix(rest, "{") {
		if !strings.HasSuffix(rest, "}") {
			return nil, &SyntaxError{File: file, Msg: fmt.Sprintf("unterminated value set in %q", decl)}
		}
		inner := rest[1 : len(rest)-1]
		for _, v := range strings.Split(inner, ",") {
			v = strings.TrimSpace(v)
			v = strings.Trim(v, `"`)
			if v != "" {
				md.Values = append(md.Values, v)
			}
		}
		return md, nil
	}
	if kind == cast.MetaFreshIdentKind {
		for _, part := range strings.Split(rest, "##") {
			part = strings.TrimSpace(part)
			if strings.HasPrefix(part, `"`) {
				md.Fresh = append(md.Fresh, FreshPart{Lit: strings.Trim(part, `"`)})
			} else if part != "" {
				md.Fresh = append(md.Fresh, FreshPart{Ref: part})
			}
		}
		return md, nil
	}
	return nil, &SyntaxError{File: file, Msg: fmt.Sprintf("unsupported metavariable initializer %q", decl)}
}
