package smpl

import (
	"strings"
	"testing"
)

const starPatch = `// gocci:check id=unchecked-call severity=error msg="result of f(E) is ignored"
@r@
expression E;
@@
* f(E);
`

func TestStarLinesParse(t *testing.T) {
	p, err := ParsePatch("star.cocci", starPatch)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if !r.IsCheck() {
		t.Fatalf("star rule not recognized as check rule")
	}
	if !p.HasChecks() {
		t.Fatalf("patch with star rule reports HasChecks == false")
	}
	pat := r.Pattern
	if !pat.HasStar || pat.HasTransform {
		t.Fatalf("HasStar=%v HasTransform=%v, want true/false", pat.HasStar, pat.HasTransform)
	}
	if got := pat.FirstStarToken(); got < 0 {
		t.Fatalf("FirstStarToken = %d, want a starred token", got)
	} else if tok := pat.Toks.Tokens[got]; tok.Text != "f" {
		t.Fatalf("first starred token = %q, want \"f\"", tok.Text)
	}
	if r.Check == nil || r.Check.ID != "unchecked-call" || r.Check.Severity != "error" {
		t.Fatalf("check metadata not attached: %+v", r.Check)
	}
	if want := "result of f(E) is ignored"; r.Check.Msg != want {
		t.Fatalf("msg = %q, want %q", r.Check.Msg, want)
	}
}

func TestStarMixedWithTransformIsError(t *testing.T) {
	_, err := ParsePatch("mix.cocci", "@r@\nexpression E;\n@@\n* f(E);\n- g(E);\n+ h(E);\n")
	if err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Fatalf("mixing * with -/+ did not error usefully: %v", err)
	}
}

func TestCheckHeaderErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"// gocci:check severity=error\n@r@\n@@\nf(x);\n", "missing id"},
		{"// gocci:check id=a severity=fatal\n@r@\n@@\nf(x);\n", "not error, warning, or info"},
		{"// gocci:check id=a bogus=1\n@r@\n@@\nf(x);\n", "unknown gocci:check field"},
		{"// gocci:check id=a\n", "no rule following"},
		{"// gocci:check id=a\n// gocci:check id=b\n@r@\n@@\nf(x);\n", "duplicate gocci:check"},
		{"// gocci:check id=a\n@script:python p@\nx << r.i;\n@@\npass\n", "must precede a match rule"},
		{"// gocci:check id=a\n@r@\n@@\n- f(x);\n+ g(x);\n", "check rules are match-only"},
		{"// gocci:check id=\"has spaces\"\n@r@\n@@\nf(x);\n", "may only contain"},
	}
	for _, c := range cases {
		_, err := ParsePatch("bad.cocci", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("patch %q: error %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestCheckHeaderDefaultsAndContextRule(t *testing.T) {
	// A check rule needs no star lines: plain context bodies report too.
	p, err := ParsePatch("ctx.cocci", "// gocci:check id=ctx-check msg=\"saw it\"\n@r@\nexpression E;\n@@\nf(E)\n")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if !r.IsCheck() || r.Check.Severity != "warning" {
		t.Fatalf("context check rule: IsCheck=%v severity=%q, want true/warning", r.IsCheck(), r.Check.Severity)
	}
}

func TestStarRenderFixpoint(t *testing.T) {
	for _, src := range []string{
		starPatch,
		"// gocci:check id=two severity=info msg=\"quoted \\\"msg\\\" here\"\n@a@\n@@\n* g(1);\n",
		"@plain@\n@@\n* lone_star(x);\n",
	} {
		p, err := ParsePatch("fix.cocci", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		text := Render(p)
		p2, err := ParsePatch("fix.cocci", text)
		if err != nil {
			t.Fatalf("rendered patch does not re-parse: %v\n%s", err, text)
		}
		if again := Render(p2); again != text {
			t.Fatalf("render not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
		if !p2.HasChecks() {
			t.Fatalf("re-parsed patch lost its check rules:\n%s", text)
		}
	}
}
