package sempatch_test

import (
	"fmt"

	sempatch "repro"
)

// ExampleApplier is the 60-second quickstart from the README: parse a
// semantic patch, apply it to one file, print the unified diff.
func ExampleApplier() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	src := "void setup(int x)\n{\n\told_api(x, 1);\n}\n"
	res, err := sempatch.NewApplier(patch, sempatch.Options{}).
		Apply(sempatch.File{Name: "x.c", Src: src})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Diffs["x.c"])
	// Output:
	// --- a/x.c
	// +++ b/x.c
	// @@ -1,4 +1,4 @@
	//  void setup(int x)
	//  {
	// -	old_api(x, 1);
	// +	new_api(x, 1);
	//  }
}

// ExampleBatchApplier applies one patch across a whole file set with a
// worker pool. Results stream back in input order whatever the worker
// count, so the output below is deterministic.
func ExampleBatchApplier() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
		{Name: "c.c", Src: "void c(void)\n{\n\told_api(2);\n}\n"},
	}
	ba := sempatch.NewBatchApplier(patch, sempatch.Options{Workers: 4})
	for fr := range ba.ApplyAll(files) {
		if fr.Err != nil {
			panic(fr.Err)
		}
		fmt.Printf("%s changed=%v\n", fr.Name, fr.Changed())
	}
	// Output:
	// a.c changed=true
	// b.c changed=false
	// c.c changed=true
}

// ExampleBatchApplier_applyAllFunc shows the callback form with aggregate
// statistics — what `gocci -r --stats` prints is built on this.
func ExampleBatchApplier_applyAllFunc() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
	}
	st, err := sempatch.NewBatchApplier(patch, sempatch.Options{}).
		ApplyAllFunc(files, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("files=%d matched=%d changed=%d errors=%d\n",
		st.Files, st.Matched, st.Changed, st.Errors)
	// Output:
	// files=2 matched=1 changed=1 errors=0
}
