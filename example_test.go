package sempatch_test

import (
	"fmt"
	"os"

	sempatch "repro"
)

// ExampleApplier is the 60-second quickstart from the README: parse a
// semantic patch, apply it to one file, print the unified diff.
func ExampleApplier() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	src := "void setup(int x)\n{\n\told_api(x, 1);\n}\n"
	res, err := sempatch.NewApplier(patch, sempatch.Options{}).
		Apply(sempatch.File{Name: "x.c", Src: src})
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Diffs["x.c"])
	// Output:
	// --- a/x.c
	// +++ b/x.c
	// @@ -1,4 +1,4 @@
	//  void setup(int x)
	//  {
	// -	old_api(x, 1);
	// +	new_api(x, 1);
	//  }
}

// ExampleBatchApplier applies one patch across a whole file set with a
// worker pool. Results stream back in input order whatever the worker
// count, so the output below is deterministic.
func ExampleBatchApplier() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
		{Name: "c.c", Src: "void c(void)\n{\n\told_api(2);\n}\n"},
	}
	ba := sempatch.NewBatchApplier(patch, sempatch.Options{Workers: 4})
	for fr := range ba.ApplyAll(files) {
		if fr.Err != nil {
			panic(fr.Err)
		}
		fmt.Printf("%s changed=%v\n", fr.Name, fr.Changed())
	}
	// Output:
	// a.c changed=true
	// b.c changed=false
	// c.c changed=true
}

// ExampleCampaign applies an ordered collection of patches in one sweep:
// each file sees the patches in order (the second fires on the first's
// output), but is parsed at most once.
func ExampleCampaign() {
	rename, err := sempatch.ParsePatch("rename.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	harden, err := sempatch.ParsePatch("harden.cocci", `@@
expression list el;
@@
- new_api(el)
+ checked_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
	}
	ca := sempatch.NewCampaign([]*sempatch.Patch{rename, harden}, sempatch.Options{Workers: 4})
	for fr := range ca.ApplyAll(files) {
		if fr.Err != nil {
			panic(fr.Err)
		}
		fmt.Printf("%s changed=%v", fr.Name, fr.Changed())
		for _, o := range fr.Patches {
			fmt.Printf(" [%s changed=%v skipped=%v]", o.Patch, o.Changed, o.Skipped)
		}
		fmt.Println()
	}
	// Output:
	// a.c changed=true [rename.cocci changed=true skipped=false] [harden.cocci changed=true skipped=false]
	// b.c changed=false [rename.cocci changed=false skipped=true] [harden.cocci changed=false skipped=true]
}

// ExampleBatchApplier_cache shows the persistent corpus index: the first
// run populates the cache, the second replays every unchanged file's
// result without scanning, parsing, or matching it. Outputs are identical
// either way.
func ExampleBatchApplier_cache() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
		{Name: "c.c", Src: "void c(void)\n{\n\told_api(2);\n}\n"},
	}
	dir, err := os.MkdirTemp("", "gocci-cache-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	opts := sempatch.Options{CacheDir: dir}

	cold, err := sempatch.NewBatchApplier(patch, opts).ApplyAllFunc(files, nil)
	if err != nil {
		panic(err)
	}
	warm, err := sempatch.NewBatchApplier(patch, opts).ApplyAllFunc(files, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold: changed=%d cached=%d\n", cold.Changed, cold.Cached)
	fmt.Printf("warm: changed=%d cached=%d\n", warm.Changed, warm.Cached)
	// Output:
	// cold: changed=2 cached=0
	// warm: changed=2 cached=3
}

// ExampleBatchApplier_applyAllFunc shows the callback form with aggregate
// statistics — what `gocci -r --stats` prints is built on this.
func ExampleBatchApplier_applyAllFunc() {
	patch, err := sempatch.ParsePatch("swap.cocci", `@@
expression list el;
@@
- old_api(el)
+ new_api(el)
`)
	if err != nil {
		panic(err)
	}
	files := []sempatch.File{
		{Name: "a.c", Src: "void a(void)\n{\n\told_api(1);\n}\n"},
		{Name: "b.c", Src: "void b(void)\n{\n\tfine();\n}\n"},
	}
	st, err := sempatch.NewBatchApplier(patch, sempatch.Options{}).
		ApplyAllFunc(files, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("files=%d matched=%d changed=%d errors=%d\n",
		st.Files, st.Matched, st.Changed, st.Errors)
	// Output:
	// files=2 matched=1 changed=1 errors=0
}
