// Multiversion: the full lifecycle of ISA-specific function clones from the
// paper — L2 creates declare-variant clones with fresh identifiers, L3 marks
// the avx512 clones for specialisation, and L4 later removes obsolete
// specializations (the bloat-removal rule pair with inherited
// metavariables).
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/patchlib"
)

func main() {
	// Phase 1: clone kernels as OpenMP declare-variants (L2).
	kernels := codegen.Kernels(codegen.Config{Funcs: 1, StmtsPerFunc: 1, Seed: 2})
	l2, _ := patchlib.ByID("L2")
	res, _, err := l2.RunOn(kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== L2: clone creation ===")
	fmt.Print(res.Diffs["L2.c"])

	// Phase 2: mark attribute-based avx512 clones (L3).
	mv := codegen.Multiversion(codegen.Config{Funcs: 1, StmtsPerFunc: 1, Seed: 2})
	l3, _ := patchlib.ByID("L3")
	res, _, err = l3.RunOn(mv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== L3: marking avx512 clones ===")
	fmt.Print(res.Diffs["L3.c"])

	// Phase 3: retire avx512/avx2 specializations (L4).
	l4, _ := patchlib.ByID("L4")
	res, _, err = l4.RunOn(mv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== L4: bloat removal ===")
	fmt.Print(res.Diffs["L4.c"])
}
