// Unroll: the paper's loop re-rolling use case, contrasting the quick rule
// p0 (L5) with the safe two-step p1+r1 (L6). On a uniformly unrolled loop
// both collapse it to a single statement under `#pragma omp unroll
// partial(4)`; on a loop whose four statements differ beyond the index, r1
// refuses — the property that makes the two-step variant safe.
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/patchlib"
)

const nonUniform = `void f(int n, double *s, double *q) {
	for (int v=0; v+4-1 < n; v+=4)
	{
		s[v+0] = q[v+0];
		s[v+1] = q[v+1] * 2;
		s[v+2] = q[v+2];
		s[v+3] = q[v+3];
	}
}
`

func main() {
	uniform := codegen.Unrolled(codegen.Config{Funcs: 1, StmtsPerFunc: 0, Seed: 5})

	l5, _ := patchlib.ByID("L5")
	l6, _ := patchlib.ByID("L6")

	res, _, err := l5.RunOn(uniform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== L5 (p0) on a uniformly unrolled loop ===")
	fmt.Print(res.Diffs["L5.c"])

	res, _, err = l6.RunOn(uniform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== L6 (p1+r1) on the same loop ===")
	fmt.Print(res.Diffs["L6.c"])

	res, out, err := l6.RunOn(nonUniform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== L6 on a NON-uniform loop: r1 matched =", res.Matched["r1"], "===")
	fmt.Println("(the paper notes p1 alone leaves normalised-but-wrong code;")
	fmt.Println(" a third undo rule would restore it — r1 correctly refused)")
	_ = out
}
