// Aossoa: the [ML21] predecessor case study the paper builds on — convert a
// GADGET-style array-of-structures particle code to structure-of-arrays for
// better auto-vectorization, keeping the AoS source as the one developers
// edit. The tool analyses the struct layout, generates the SoA declaration
// and the access-rewriting semantic patch, and applies it.
package main

import (
	"fmt"
	"log"

	"repro/internal/aossoa"
	"repro/internal/codegen"
	"repro/internal/diff"
)

func main() {
	src := codegen.AoS(codegen.Config{Funcs: 2, StmtsPerFunc: 2, Seed: 21})

	layout, err := aossoa.Analyze(src, "particle", "P")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("struct %s: %d fields, array %s[%s]\n\n",
		layout.StructName, len(layout.Fields), layout.ArrayName, layout.Length)
	fmt.Println("=== generated semantic patch ===")
	fmt.Print(layout.AccessPatch())

	out, n, err := aossoa.Transform(src, "particle", "P")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== %d accesses rewritten ===\n", n)
	fmt.Print(diff.Unified("a/particles.c", "b/particles.c", src, out))
}
