// Hipify: the paper's CUDA-to-HIP use cases (L8, L9, L10) on a generated
// CUDA mini-app — function dictionary, type dictionary, and triple-chevron
// kernel-launch rewriting — followed by a comparison of the AST-level
// translator against the hipify-perl-style text baseline on an adversarial
// snippet where only the AST approach gets it right.
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/hipify"
	"repro/internal/patchlib"
)

func main() {
	src := codegen.CUDA(codegen.Config{Funcs: 1, StmtsPerFunc: 1, Seed: 3})

	// Semantic-patch route: the kernel launch listing (L10).
	exp, _ := patchlib.ByID("L10")
	res, out, err := exp.RunOn(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== semantic patch (L10 kernel launches) ===")
	fmt.Print(res.Diffs["L10.c"])
	_ = out

	// Whole-program AST translation.
	full, rep, err := hipify.Translate("app.cu", src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== AST hipify: %d funcs, %d types, %d enums, %d launches, %d headers ===\n",
		rep.Functions, rep.Types, rep.Enums, rep.Launches, rep.Headers)
	fmt.Print(full)

	// Where text substitution goes wrong.
	adversarial := `void audit(void) {
	int cudaMalloc = count_allocs();        // local variable, not the API
	log_msg("direct cudaMalloc calls are forbidden");
	record(cudaMalloc);
}
`
	astOut, _, _ := hipify.Translate("audit.c", adversarial)
	textOut, _ := hipify.TextHipify(adversarial)
	fmt.Println("\n=== adversarial input ===")
	fmt.Print(adversarial)
	fmt.Println("=== AST translation (correct: nothing to do) ===")
	fmt.Print(astOut)
	fmt.Println("=== text baseline (wrong: renames the local and the string) ===")
	fmt.Print(textOut)
}
