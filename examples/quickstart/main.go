// Quickstart: parse a semantic patch, apply it to a source string, print the
// unified diff. The patch renames an API call at the expression level —
// arguments, however complex, ride along through the `el` expression-list
// metavariable.
package main

import (
	"fmt"
	"log"

	sempatch "repro"
)

const patch = `@rename@
expression list el;
@@
- old_solver_init(el)
+ solver_init_v2(el)
`

const src = `#include "solver.h"

int setup(struct grid *g, int rank) {
	old_solver_init(g, rank);
	old_solver_init(g->coarse, rank % 4);
	return validate(g);
}
`

func main() {
	p, err := sempatch.ParsePatch("rename.cocci", patch)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sempatch.NewApplier(p, sempatch.Options{}).
		Apply(sempatch.File{Name: "setup.c", Src: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rules:", p.Rules(), "matches:", res.MatchCount["rename"])
	fmt.Print(res.Diffs["setup.c"])
}
