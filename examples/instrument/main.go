// Instrument: the paper's first use case (L1). A two-rule semantic patch
// adds LIKWID marker-API instrumentation around every OpenMP-annotated
// block of a generated numeric code, plus the required include — exactly the
// workflow of transiently instrumenting the kernels one is currently tuning.
package main

import (
	"fmt"
	"log"

	sempatch "repro"
	"repro/internal/codegen"
)

const patch = `@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
`

func main() {
	src := codegen.OpenMP(codegen.Config{Funcs: 2, StmtsPerFunc: 1, Seed: 7})
	res, err := sempatch.Apply("likwid.cocci", patch, sempatch.Options{},
		sempatch.File{Name: "kernels.c", Src: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== instrumented source ===")
	fmt.Print(res.Outputs["kernels.c"])
	fmt.Println("=== diff ===")
	fmt.Print(res.Diffs["kernels.c"])
}
