// Acc2omp: the paper's directive-translation use case (L11). A pragmainfo
// metavariable captures each OpenACC directive body, a script rule runs the
// real directive/clause translator, and the final rule swaps the pragma —
// all at the AST level, immune to line continuations and spacing.
package main

import (
	"fmt"
	"log"

	"repro/internal/accomp"
	"repro/internal/codegen"
	"repro/internal/patchlib"
)

func main() {
	src := codegen.OpenACC(codegen.Config{Funcs: 3, StmtsPerFunc: 1, Seed: 11})

	exp, _ := patchlib.ByID("L11")
	res, _, err := exp.RunOn(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== semantic patch translation (host mode) ===")
	fmt.Print(res.Diffs["L11.c"])

	// The same translator, straight line-oriented (what the paper contrasts
	// the engine against), in offload mode.
	out, warns, err := accomp.TranslateSource(src, accomp.Offload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== line-oriented translation (offload mode) ===")
	fmt.Print(out)
	for _, w := range warns {
		fmt.Printf("warning: %s: %s\n", w.What, w.Why)
	}
}
