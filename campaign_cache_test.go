package sempatch

// Public-API tests for the persistent corpus index and campaign mode: the
// cache must be invisible in outputs (cold == warm == disabled, byte for
// byte), campaigns must parse each unchanged file exactly once however many
// patches they apply, and warm runs must not parse at all.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/cparse"
)

// parityCorpus is the realistic whole-codebase shape: most files cannot
// match, a few can.
func parityCorpus(n int) []File {
	files := make([]File, n)
	for i := range files {
		src := codegen.Mixed(codegen.Config{Funcs: 4 + i%3, StmtsPerFunc: 2, Seed: int64(i + 1)})
		if i%5 == 0 {
			src += fmt.Sprintf("\nvoid migrate_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i, i)
		}
		files[i] = File{Name: fmt.Sprintf("src%03d.c", i), Src: src}
	}
	return files
}

const parityPatch = `@r@
expression list el;
@@
- legacy_halo_exchange(el)
+ halo_exchange_v2(el)
`

// TestCacheParity pins the cache's one non-negotiable property: outputs are
// byte-identical with the cache cold, warm, and disabled, for every file —
// diffs, outputs, and match counts alike.
func TestCacheParity(t *testing.T) {
	files := parityCorpus(30)
	patch, err := ParsePatch("parity.cocci", parityPatch)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cache")

	collect := func(opts Options) ([]FileResult, BatchStats) {
		var out []FileResult
		st, err := NewBatchApplier(patch, opts).ApplyAllFunc(files, func(fr FileResult) error {
			if fr.Err != nil {
				return fr.Err
			}
			out = append(out, fr)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}

	disabled, _ := collect(Options{Workers: 4})
	cold, coldSt := collect(Options{Workers: 4, CacheDir: dir})
	warm, warmSt := collect(Options{Workers: 4, CacheDir: dir})

	if coldSt.Cached != 0 {
		t.Errorf("cold run reported %d cached", coldSt.Cached)
	}
	if warmSt.Cached != len(files) {
		t.Errorf("warm run cached %d of %d files", warmSt.Cached, len(files))
	}
	for i := range files {
		for _, mode := range []struct {
			name string
			fr   FileResult
		}{{"cold", cold[i]}, {"warm", warm[i]}} {
			if mode.fr.Output != disabled[i].Output {
				t.Errorf("%s %s: output differs from cache-disabled run", mode.name, files[i].Name)
			}
			if mode.fr.Diff != disabled[i].Diff {
				t.Errorf("%s %s: diff differs from cache-disabled run", mode.name, files[i].Name)
			}
			if fmt.Sprint(mode.fr.MatchCount) != fmt.Sprint(disabled[i].MatchCount) {
				t.Errorf("%s %s: match counts differ", mode.name, files[i].Name)
			}
		}
	}
	// A warm run touches the parser not at all.
	before := cparse.Parses()
	if _, err := NewBatchApplier(patch, Options{Workers: 4, CacheDir: dir}).ApplyAllFunc(files, nil); err != nil {
		t.Fatal(err)
	}
	if got := cparse.Parses() - before; got != 0 {
		t.Errorf("warm cached run parsed %d files, want 0", got)
	}
}

// TestCampaignParsesOnce asserts the campaign's headline contract via the
// parser's instrumentation: N patches over an unchanged corpus parse each
// file exactly once, where N sequential single-patch runs would parse it N
// times (minus prefilter skips).
func TestCampaignParsesOnce(t *testing.T) {
	// Context-only probes: every patch matches every file (a function
	// definition always exists) and none transforms, so no re-parses are
	// ever justified.
	probe := "@probe%d@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n"
	var patches []*Patch
	for i := 0; i < 4; i++ {
		p, err := ParsePatch(fmt.Sprintf("probe%d.cocci", i), fmt.Sprintf(probe, i))
		if err != nil {
			t.Fatal(err)
		}
		patches = append(patches, p)
	}
	files := parityCorpus(20)

	before := cparse.Parses()
	st, err := NewCampaign(patches, Options{Workers: 4}).ApplyAllFunc(files, func(fr CampaignFileResult) error {
		return fr.Err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cparse.Parses() - before; got != int64(len(files)) {
		t.Errorf("campaign over %d patches parsed %d times for %d files, want one parse per file",
			len(patches), got, len(files))
	}
	for i, ps := range st.PerPatch {
		if ps.Matched != len(files) {
			t.Errorf("probe patch %d matched %d of %d files", i, ps.Matched, len(files))
		}
	}
}

// TestCampaignFailureDoesNotPoisonCache pins the result cache's error
// discipline inside a campaign: when a mid-campaign member fails on one
// file, (1) the members that already succeeded on that file keep sound
// cache entries, (2) the failure itself is never cached — a warm re-run
// fails again instead of replaying a bogus success — and (3) the members
// that never got to run leave no entry at all.
func TestCampaignFailureDoesNotPoisonCache(t *testing.T) {
	good, err := ParsePatch("good.cocci", "@g@\nexpression list el;\n@@\n- old_api(el)\n+ new_api(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	// boom matches trigger_boom(e) and then runs a script whose body is not
	// executable by the restricted interpreter, so it errors exactly on the
	// files where the rule matched and succeeds (skips) everywhere else.
	boom, err := ParsePatch("boom.cocci",
		"@m@\nexpression e;\n@@\ntrigger_boom(e)\n\n@script:python s@\ne << m.e;\nout;\n@@\ncoccinelle.out = nonsense_call(e);\n")
	if err != nil {
		t.Fatal(err)
	}
	tail, err := ParsePatch("tail.cocci", "@t@\nexpression list el;\n@@\n- tail_api(el)\n+ tail_api_v2(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	files := []File{
		{Name: "bad.c", Src: "void b(void)\n{\n\told_api(1);\n\ttrigger_boom(2);\n\ttail_api(3);\n}\n"},
		{Name: "ok.c", Src: "void o(void)\n{\n\told_api(4);\n\ttail_api(5);\n}\n"},
	}
	dir := filepath.Join(t.TempDir(), "cache")
	members := []*Patch{good, boom, tail}

	runCampaign := func() map[string]CampaignFileResult {
		out := map[string]CampaignFileResult{}
		_, err := NewCampaign(members, Options{CacheDir: dir}).ApplyAllFunc(files, func(fr CampaignFileResult) error {
			out[fr.Name] = fr
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cold := runCampaign()
	if cold["bad.c"].Err == nil {
		t.Fatal("the boom member did not fail on bad.c")
	}
	if len(cold["bad.c"].Patches) != 1 || !cold["bad.c"].Patches[0].Changed {
		t.Fatalf("bad.c outcomes before the failure: %+v", cold["bad.c"].Patches)
	}
	if cold["ok.c"].Err != nil || !strings.Contains(cold["ok.c"].Output, "tail_api_v2(5)") {
		t.Fatalf("ok.c must complete the whole campaign: %+v", cold["ok.c"])
	}

	// (2) A warm re-run hits the same error — the failure was not cached as
	// a success — while the member that did succeed on bad.c replays.
	warm := runCampaign()
	if warm["bad.c"].Err == nil {
		t.Error("warm re-run replayed a failed member as a success")
	}
	if len(warm["bad.c"].Patches) != 1 || !warm["bad.c"].Patches[0].Cached {
		t.Errorf("good member's sound outcome on bad.c did not replay: %+v", warm["bad.c"].Patches)
	}

	// (1) The good member's entry for bad.c is byte-correct: a single-patch
	// batch run over the same cache replays it, matching a cache-disabled
	// run exactly.
	applyOne := func(p *Patch, opts Options, f File) FileResult {
		var out FileResult
		if _, err := NewBatchApplier(p, opts).ApplyAllFunc([]File{f}, func(fr FileResult) error {
			out = fr
			return fr.Err
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	cached := applyOne(good, Options{CacheDir: dir}, files[0])
	plain := applyOne(good, Options{}, files[0])
	if !cached.Cached {
		t.Error("good member's entry for bad.c missing from the cache")
	}
	if cached.Output != plain.Output || cached.Diff != plain.Diff {
		t.Error("good member's cached outcome for bad.c diverges from a fresh run")
	}

	// (3) The tail member never ran on bad.c, so the text it would have
	// seen (the good member's output) must have no entry: a first run over
	// it derives, not replays.
	intermediate := File{Name: "bad.c", Src: plain.Output}
	if fr := applyOne(tail, Options{CacheDir: dir}, intermediate); fr.Cached {
		t.Error("tail member has a cache entry for a file it never processed")
	}
}

// A campaign whose members transform re-parses only what changed: the
// changed file is parsed once for the sweep plus once after the rewrite
// (the engine re-parses edited text before the next member matches it).
func TestCampaignSequencing(t *testing.T) {
	first, err := ParsePatch("a.cocci", "@a@\nexpression list el;\n@@\n- step_one(el)\n+ step_two(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParsePatch("b.cocci", "@b@\nexpression list el;\n@@\n- step_two(el)\n+ step_three(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	files := []File{
		{Name: "x.c", Src: "void x(void)\n{\n\tstep_one(1);\n}\n"},
		{Name: "y.c", Src: "void y(void)\n{\n\tidle();\n}\n"},
	}
	var got []CampaignFileResult
	for fr := range NewCampaign([]*Patch{first, second}, Options{}).ApplyAll(files) {
		if fr.Err != nil {
			t.Fatal(fr.Err)
		}
		got = append(got, fr)
	}
	if !strings.Contains(got[0].Output, "step_three(1)") {
		t.Errorf("second patch did not see the first's output:\n%s", got[0].Output)
	}
	if !got[0].Patches[0].Changed || !got[0].Patches[1].Changed {
		t.Errorf("per-patch outcomes wrong: %+v", got[0].Patches)
	}
	if got[1].Changed() || !got[1].Patches[0].Skipped || !got[1].Patches[1].Skipped {
		t.Errorf("non-matching file should be skipped by both prefilters: %+v", got[1].Patches)
	}
}
