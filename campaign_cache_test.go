package sempatch

// Public-API tests for the persistent corpus index and campaign mode: the
// cache must be invisible in outputs (cold == warm == disabled, byte for
// byte), campaigns must parse each unchanged file exactly once however many
// patches they apply, and warm runs must not parse at all.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/cparse"
)

// parityCorpus is the realistic whole-codebase shape: most files cannot
// match, a few can.
func parityCorpus(n int) []File {
	files := make([]File, n)
	for i := range files {
		src := codegen.Mixed(codegen.Config{Funcs: 4 + i%3, StmtsPerFunc: 2, Seed: int64(i + 1)})
		if i%5 == 0 {
			src += fmt.Sprintf("\nvoid migrate_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i, i)
		}
		files[i] = File{Name: fmt.Sprintf("src%03d.c", i), Src: src}
	}
	return files
}

const parityPatch = `@r@
expression list el;
@@
- legacy_halo_exchange(el)
+ halo_exchange_v2(el)
`

// TestCacheParity pins the cache's one non-negotiable property: outputs are
// byte-identical with the cache cold, warm, and disabled, for every file —
// diffs, outputs, and match counts alike.
func TestCacheParity(t *testing.T) {
	files := parityCorpus(30)
	patch, err := ParsePatch("parity.cocci", parityPatch)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cache")

	collect := func(opts Options) ([]FileResult, BatchStats) {
		var out []FileResult
		st, err := NewBatchApplier(patch, opts).ApplyAllFunc(files, func(fr FileResult) error {
			if fr.Err != nil {
				return fr.Err
			}
			out = append(out, fr)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, st
	}

	disabled, _ := collect(Options{Workers: 4})
	cold, coldSt := collect(Options{Workers: 4, CacheDir: dir})
	warm, warmSt := collect(Options{Workers: 4, CacheDir: dir})

	if coldSt.Cached != 0 {
		t.Errorf("cold run reported %d cached", coldSt.Cached)
	}
	if warmSt.Cached != len(files) {
		t.Errorf("warm run cached %d of %d files", warmSt.Cached, len(files))
	}
	for i := range files {
		for _, mode := range []struct {
			name string
			fr   FileResult
		}{{"cold", cold[i]}, {"warm", warm[i]}} {
			if mode.fr.Output != disabled[i].Output {
				t.Errorf("%s %s: output differs from cache-disabled run", mode.name, files[i].Name)
			}
			if mode.fr.Diff != disabled[i].Diff {
				t.Errorf("%s %s: diff differs from cache-disabled run", mode.name, files[i].Name)
			}
			if fmt.Sprint(mode.fr.MatchCount) != fmt.Sprint(disabled[i].MatchCount) {
				t.Errorf("%s %s: match counts differ", mode.name, files[i].Name)
			}
		}
	}
	// A warm run touches the parser not at all.
	before := cparse.Parses()
	if _, err := NewBatchApplier(patch, Options{Workers: 4, CacheDir: dir}).ApplyAllFunc(files, nil); err != nil {
		t.Fatal(err)
	}
	if got := cparse.Parses() - before; got != 0 {
		t.Errorf("warm cached run parsed %d files, want 0", got)
	}
}

// TestCampaignParsesOnce asserts the campaign's headline contract via the
// parser's instrumentation: N patches over an unchanged corpus parse each
// file exactly once, where N sequential single-patch runs would parse it N
// times (minus prefilter skips).
func TestCampaignParsesOnce(t *testing.T) {
	// Context-only probes: every patch matches every file (a function
	// definition always exists) and none transforms, so no re-parses are
	// ever justified.
	probe := "@probe%d@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n"
	var patches []*Patch
	for i := 0; i < 4; i++ {
		p, err := ParsePatch(fmt.Sprintf("probe%d.cocci", i), fmt.Sprintf(probe, i))
		if err != nil {
			t.Fatal(err)
		}
		patches = append(patches, p)
	}
	files := parityCorpus(20)

	before := cparse.Parses()
	st, err := NewCampaign(patches, Options{Workers: 4}).ApplyAllFunc(files, func(fr CampaignFileResult) error {
		return fr.Err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cparse.Parses() - before; got != int64(len(files)) {
		t.Errorf("campaign over %d patches parsed %d times for %d files, want one parse per file",
			len(patches), got, len(files))
	}
	for i, ps := range st.PerPatch {
		if ps.Matched != len(files) {
			t.Errorf("probe patch %d matched %d of %d files", i, ps.Matched, len(files))
		}
	}
}

// A campaign whose members transform re-parses only what changed: the
// changed file is parsed once for the sweep plus once after the rewrite
// (the engine re-parses edited text before the next member matches it).
func TestCampaignSequencing(t *testing.T) {
	first, err := ParsePatch("a.cocci", "@a@\nexpression list el;\n@@\n- step_one(el)\n+ step_two(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParsePatch("b.cocci", "@b@\nexpression list el;\n@@\n- step_two(el)\n+ step_three(el)\n")
	if err != nil {
		t.Fatal(err)
	}
	files := []File{
		{Name: "x.c", Src: "void x(void)\n{\n\tstep_one(1);\n}\n"},
		{Name: "y.c", Src: "void y(void)\n{\n\tidle();\n}\n"},
	}
	var got []CampaignFileResult
	for fr := range NewCampaign([]*Patch{first, second}, Options{}).ApplyAll(files) {
		if fr.Err != nil {
			t.Fatal(fr.Err)
		}
		got = append(got, fr)
	}
	if !strings.Contains(got[0].Output, "step_three(1)") {
		t.Errorf("second patch did not see the first's output:\n%s", got[0].Output)
	}
	if !got[0].Patches[0].Changed || !got[0].Patches[1].Changed {
		t.Errorf("per-patch outcomes wrong: %+v", got[0].Patches)
	}
	if got[1].Changed() || !got[1].Patches[0].Skipped || !got[1].Patches[1].Skipped {
		t.Errorf("non-matching file should be skipped by both prefilters: %+v", got[1].Patches)
	}
}
