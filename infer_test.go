package sempatch

// Public-API tests for patch inference by demonstration: Infer and
// MinePairs, the sempatch-level wrappers over internal/infer.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestInferPublicAPI(t *testing.T) {
	before := `int f(int n) {
    int r = old_api(n);
    return r;
}
`
	after := `int f(int n) {
    int r = new_api(n, 0);
    return r;
}
`
	res, err := Infer("demo", Options{}, InferPair{Name: "p", Before: before, After: after})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Cocci, "@demo@") {
		t.Errorf("rule name not honored:\n%s", res.Cocci)
	}
	if res.Variant == "" || len(res.Examples) != 1 {
		t.Errorf("variant %q, examples %v", res.Variant, res.Examples)
	}

	// The returned Patch plugs straight into the public applier and
	// generalizes beyond the demonstration.
	out, err := NewApplier(res.Patch, Options{}).Apply(File{Name: "x.c", Src: `long g(long k) {
    long v = old_api(k);
    return v;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Outputs["x.c"], "new_api(k, 0)") {
		t.Errorf("inferred patch does not generalize:\n%s", out.Outputs["x.c"])
	}
}

func TestInferPublicError(t *testing.T) {
	_, err := Infer("", Options{}, InferPair{Name: "bad", Before: "int f( {", After: "int f(void) {}"})
	ie, ok := err.(*InferError)
	if !ok {
		t.Fatalf("error is %T, want *InferError: %v", err, err)
	}
	if ie.Stage != "parse" || ie.Pair != "bad" {
		t.Errorf("stage %q pair %q, want parse/bad", ie.Stage, ie.Pair)
	}
}

func TestMinePairsFromScratchRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", dir}, args...)...)
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	write := func(src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "m.c"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	git("init", "-q")
	write("void f(int x) {\n    old_call(x);\n}\n")
	git("add", "m.c")
	git("commit", "-q", "-m", "seed")
	write("void f(int x) {\n    new_call(x);\n}\n")
	git("commit", "-q", "-am", "migrate")

	pairs, err := MinePairs(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || !strings.Contains(pairs[0].Name, "m.c") {
		t.Fatalf("mined %v", pairs)
	}
	res, err := Infer("", Options{}, pairs...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Cocci, "new_call") {
		t.Errorf("mined inference missing the rewrite:\n%s", res.Cocci)
	}
}
