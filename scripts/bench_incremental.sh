#!/bin/sh
# Render the function-granular incrementality benchmarks into a JSON
# summary (default: BENCH_incremental.json at the repo root).
#
# The benchmarks live in internal/batch/fnmatch_bench_test.go and run
# against an in-memory store — the configuration a resident session uses —
# so they measure matching and splicing, not disk round-trips. Each mode
# is run COUNT times and the minimum ns/op is kept: on shared machines the
# minimum is the least-disturbed estimate of the true cost.
#
#   BENCHTIME=100x COUNT=3 scripts/bench_incremental.sh [out.json]
#
# BENCH_STRICT=1 exits non-zero when the warm one-function-edit speedup is
# below the 3x acceptance floor (leave it off on noisy CI runners).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100x}"
COUNT="${COUNT:-3}"
OUT="${1:-BENCH_incremental.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'WarmOneFunctionEdit|ParallelFunctionMatch' \
	-benchtime "$BENCHTIME" -count "$COUNT" ./internal/batch | tee "$TMP"

awk -v benchtime="$BENCHTIME" -v count="$COUNT" '
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
	ns = $3
	if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
	wf = best["WarmOneFunctionEdit/function-granular"]
	wb = best["WarmOneFunctionEdit/file-granular"]
	pf = best["ParallelFunctionMatch/parallel-functions"]
	pb = best["ParallelFunctionMatch/sequential-file"]
	if (wf == "" || wb == "" || pf == "" || pb == "") {
		print "bench_incremental: missing benchmark results" > "/dev/stderr"
		exit 1
	}
	floor = 3.0
	ws = wb / wf
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench_incremental.sh\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"warm_one_function_edit\": {\n"
	printf "    \"description\": \"warm apply after editing 1 of 10 functions (dots patch, 5 when-constraints, in-memory store)\",\n"
	printf "    \"function_granular_ns_op\": %d,\n", wf
	printf "    \"file_granular_ns_op\": %d,\n", wb
	printf "    \"speedup\": %.2f,\n", ws
	printf "    \"acceptance_floor\": %.1f,\n", floor
	printf "    \"pass\": %s\n", (ws >= floor ? "true" : "false")
	printf "  },\n"
	printf "  \"parallel_function_match\": {\n"
	printf "    \"description\": \"cold apply over one 64-function file; segments fan out to GOMAXPROCS goroutines (wins on multi-core only)\",\n"
	printf "    \"parallel_functions_ns_op\": %d,\n", pf
	printf "    \"sequential_file_ns_op\": %d,\n", pb
	printf "    \"speedup\": %.2f\n", pb / pf
	printf "  }\n"
	printf "}\n"
	exit (ws >= floor ? 0 : 2)
}' "$TMP" > "$OUT" && status=0 || status=$?

cat "$OUT"
if [ "${BENCH_STRICT:-0}" = "1" ] && [ "$status" -ne 0 ]; then
	echo "bench_incremental: warm one-function-edit speedup below 3x floor" >&2
	exit 1
fi
