#!/bin/sh
# Render the resident-server benchmarks into a JSON summary (default:
# BENCH_serve.json at the repo root) — the serve-scale trajectory the
# ROADMAP tracks.
#
# Three numbers and a breakdown, all over the shared 48-file generated
# corpus with the L1 instrumentation patch (every file matches — the worst
# case for a cache, since every outcome carries a rewrite):
#
#   - cold batch sweep   (BenchmarkBatchApply/workers=1): what a cold
#     process pays per run;
#   - warm resident sweep (BenchmarkServeApply/warm-sweep/workers=1):
#     the same sweep replayed from a warm session;
#   - warm single apply  (BenchmarkServeApply/warm-apply): the per-file
#     request path an editor integration hits;
#   - per-stage breakdown (BenchmarkServeStageBreakdown): where the warm
#     sweep's time goes, from the run's internal trace
#     (docs/observability.md defines the stage names).
#
# Each benchmark is run COUNT times and the minimum ns/op is kept: on
# shared machines the minimum is the least-disturbed estimate.
#
#   BENCHTIME=50x COUNT=3 scripts/bench_serve.sh [out.json]
#
# BENCH_STRICT=1 exits non-zero when the warm sweep is not at least 2x
# faster than the cold batch run (leave it off on noisy CI runners; the
# typical gap is ~8x, see docs/serve.md).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-50x}"
COUNT="${COUNT:-3}"
OUT="${1:-BENCH_serve.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'BatchApply/workers=1$|ServeApply/warm|ServeStageBreakdown' \
	-benchtime "$BENCHTIME" -count "$COUNT" . | tee "$TMP"

awk -v benchtime="$BENCHTIME" -v count="$COUNT" '
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
	ns = $3
	if (!(name in best) || ns < best[name]) best[name] = ns
	# Custom "<stage>-ns/op" metrics from the stage-breakdown benchmark:
	# keep the per-stage minima too.
	if (name == "ServeStageBreakdown") {
		# Fields: name N ns "ns/op" [value unit]... — pairs start at $5.
		for (i = 5; i < NF; i += 2) {
			unit = $(i + 1)
			if (unit ~ /-ns\/op$/) {
				stage = unit
				sub(/-ns\/op$/, "", stage)
				if (!(stage in sbest) || $i < sbest[stage]) sbest[stage] = $i
				stages[stage] = 1
			}
		}
	}
}
END {
	cold = best["BatchApply/workers=1"]
	warm = best["ServeApply/warm-sweep/workers=1"]
	apply = best["ServeApply/warm-apply"]
	if (cold == "" || warm == "" || apply == "") {
		print "bench_serve: missing benchmark results" > "/dev/stderr"
		exit 1
	}
	floor = 2.0
	speedup = cold / warm
	printf "{\n"
	printf "  \"generated_by\": \"scripts/bench_serve.sh\",\n"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"count\": %d,\n", count
	printf "  \"corpus\": \"48 generated OpenMP files, L1 instrumentation patch (every file matches)\",\n"
	printf "  \"cold_batch_sweep\": {\n"
	printf "    \"description\": \"BenchmarkBatchApply/workers=1: full cold run, no resident state\",\n"
	printf "    \"ns_op\": %d\n", cold
	printf "  },\n"
	printf "  \"warm_resident_sweep\": {\n"
	printf "    \"description\": \"BenchmarkServeApply/warm-sweep/workers=1: same sweep from a warm session\",\n"
	printf "    \"ns_op\": %d,\n", warm
	printf "    \"speedup_over_cold\": %.2f,\n", speedup
	printf "    \"acceptance_floor\": %.1f,\n", floor
	printf "    \"pass\": %s\n", (speedup >= floor ? "true" : "false")
	printf "  },\n"
	printf "  \"warm_single_apply\": {\n"
	printf "    \"description\": \"BenchmarkServeApply/warm-apply: one corpus file through the warm session\",\n"
	printf "    \"ns_op\": %d\n", apply
	printf "  },\n"
	printf "  \"warm_sweep_stage_ns\": {\n"
	n = 0
	for (s in stages) n++
	i = 0
	# Sort stage names for a stable file (insertion sort over the keys).
	split("", order)
	for (s in stages) order[++i] = s
	for (a = 1; a <= i; a++)
		for (b = a + 1; b <= i; b++)
			if (order[b] < order[a]) { t = order[a]; order[a] = order[b]; order[b] = t }
	for (a = 1; a <= i; a++)
		printf "    \"%s\": %d%s\n", order[a], sbest[order[a]], (a < i ? "," : "")
	printf "  }\n"
	printf "}\n"
	exit (speedup >= floor ? 0 : 2)
}' "$TMP" > "$OUT" && status=0 || status=$?

cat "$OUT"
if [ "${BENCH_STRICT:-0}" = "1" ] && [ "$status" -ne 0 ]; then
	echo "bench_serve: warm sweep speedup below ${floor:-2}x floor" >&2
	exit 1
fi
