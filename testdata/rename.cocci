@rename@
expression list el;
@@
- old_solver_init(el)
+ solver_init_v2(el)
