@chain@
expression list el;
@@
- solver_init_v2(el)
+ solver_init_v3(el)
