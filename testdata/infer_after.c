#include <stdio.h>

int run_solver(int n) {
    int r = new_api(n, 0);
    return r;
}

static void report(int code) {
    printf("code %d\n", code);
}
