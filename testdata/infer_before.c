#include <stdio.h>

int run_solver(int n) {
    int r = old_api(n);
    return r;
}

static void report(int code) {
    printf("code %d\n", code);
}
