#include <mpi.h>

void setup(struct grid *g, int rank)
{
	grid_alloc(g);
	old_solver_init(g, rank);
	exchange_halo(g, rank);
}

void teardown(struct grid *g)
{
	grid_free(g);
}
