package sempatch

// The resident serving layer: a Server keeps corpus sessions — compiled
// patch campaigns, the scan-word index, content hashes, and an LRU of
// parsed trees — warm in memory across requests, so repeated patch runs
// over a slowly-changing tree cost only what changed. The same state is
// reachable as a library (Session methods) and over HTTP
// (Server.Handler, the API cmd/gocci-serve exposes); see docs/serve.md.

import (
	"io"
	"net/http"
	"time"

	"repro/internal/batch"
	"repro/internal/serve"
	"repro/internal/smpl"
)

// Server hosts resident corpus sessions and the HTTP/JSON API over them.
type Server struct {
	s *serve.Server
}

// NewServer returns a server with no sessions. defaults configures
// session-less one-shot applies (inline patch + inline source over HTTP):
// dialect, limits, and worker count; its CacheDir is ignored — such
// applies cache in memory only.
func NewServer(defaults Options) *Server {
	return &Server{s: serve.NewServer(defaults.batch())}
}

// Handler returns the HTTP handler serving the API documented in
// docs/serve.md: GET /healthz, GET /metrics, GET /v1/sessions,
// GET /v1/sessions/{id}/stats, GET /v1/sessions/{id}/trace,
// POST /v1/sessions/{id}/run (NDJSON stream),
// POST /v1/sessions/{id}/invalidate, and POST /v1/apply.
func (s *Server) Handler() http.Handler { return s.s.Handler() }

// AddSession builds and registers the resident session for cfg.
// Configuration errors — a missing root, no patches, an undeclared define,
// an unusable cache directory, a duplicate id — are returned here, never
// deferred to the first request.
func (s *Server) AddSession(cfg SessionConfig) (*Session, error) {
	patches := make([]*smpl.Patch, len(cfg.Patches))
	for i, p := range cfg.Patches {
		patches[i] = p.p
	}
	ss, err := s.s.AddSession(serve.Config{
		ID:              cfg.ID,
		Root:            cfg.Root,
		Patches:         patches,
		Options:         cfg.Options.batch(),
		ASTCacheSize:    cfg.ASTCacheSize,
		MemCacheEntries: cfg.MemCacheEntries,
		WatchInterval:   cfg.WatchInterval,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: ss}, nil
}

// Session returns a registered session by id.
func (s *Server) Session(id string) (*Session, bool) {
	ss, ok := s.s.Session(id)
	if !ok {
		return nil, false
	}
	return &Session{s: ss}, true
}

// Close stops every session's watcher goroutine. Sessions stay usable;
// only background invalidation stops.
func (s *Server) Close() { s.s.Close() }

// SessionConfig configures one resident corpus session.
type SessionConfig struct {
	// ID names the session in URLs and lookups ("default" when empty).
	ID string
	// Root is the corpus directory the session serves.
	Root string
	// Patches is the campaign applied by sweeps and session-scoped
	// applies, in order.
	Patches []*Patch
	// Options is the engine and pool configuration. Options.CacheDir,
	// when set, becomes the disk layer behind the session's in-memory
	// cache, so a restarted daemon comes back warm.
	Options Options
	// ASTCacheSize bounds the resident parse-tree LRU (default 256 trees).
	ASTCacheSize int
	// MemCacheEntries bounds the in-memory scan/result cache entry count
	// (default 65536).
	MemCacheEntries int
	// WatchInterval enables the poll watcher at that period; 0 disables
	// it. Runs revalidate files by stat either way — the watcher only
	// reclaims resident state for edited or deleted files sooner.
	WatchInterval time.Duration
}

// Session is one resident corpus: compiled campaign, cache stack, and
// per-file validation state. All methods are safe for concurrent use.
type Session struct {
	s *serve.Session
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.s.ID() }

// Root returns the corpus directory.
func (s *Session) Root() string { return s.s.Root() }

// ServeRunStats aggregates one resident sweep: the campaign statistics
// plus the resident-state accounting that distinguishes a warm daemon
// from a cold batch run.
type ServeRunStats struct {
	CampaignStats
	// Cached and Skipped total the per-patch counters across the campaign.
	Cached  int
	Skipped int
	// FuncsMatched and FuncsCached total the function-granular counters:
	// function segments matched fresh vs replayed from the segment cache. A
	// warm sweep after editing one function of one file shows FuncsMatched
	// == 1 per function-local member patch.
	FuncsMatched int
	FuncsCached  int
	// Parsed counts files whose input text was parsed this sweep — after
	// editing k of N corpus files, a warm sweep parses exactly k. Read
	// counts files whose bytes were read at all.
	Parsed int
	Read   int
	// Demoted and Warnings total the post-transform verifier's demotions
	// and findings across the campaign (Options.Verify runs only).
	Demoted  int
	Warnings int
	// StageSeconds is this sweep's per-stage self-time in seconds, from the
	// run's internal trace ("worker" and "file" are pool glue and
	// scheduling; the rest are pipeline stages).
	StageSeconds map[string]float64
}

// Run sweeps the whole corpus through the campaign, streaming per-file
// results to fn (which may be nil) in sorted path order. Resident
// artifacts are revalidated by stat, reused where valid, re-derived and
// kept where not; outputs are byte-identical to a cold batch run over the
// same tree. A non-nil error from fn stops the sweep.
func (s *Session) Run(fn func(CampaignFileResult) error) (ServeRunStats, error) {
	var wrapped func(batch.CampaignFileResult) error
	if fn != nil {
		wrapped = func(fr batch.CampaignFileResult) error { return fn(publicCampaignResult(fr)) }
	}
	st, err := s.s.Run(wrapped)
	return ServeRunStats{
		CampaignStats: publicCampaignStats(st.CampaignStats),
		Cached:        st.Cached,
		Skipped:       st.Skipped,
		FuncsMatched:  st.FuncsMatched,
		FuncsCached:   st.FuncsCached,
		Parsed:        st.Parsed,
		Read:          st.Read,
		Demoted:       st.Demoted,
		Warnings:      st.Warnings,
		StageSeconds:  st.StageSeconds,
	}, err
}

// WriteTrace writes the most recent full sweep's trace as Chrome
// trace-event JSON (loadable in Perfetto), reporting false when the session
// has not swept yet — the same payload GET /v1/sessions/{id}/trace serves.
func (s *Session) WriteTrace(w io.Writer) (bool, error) { return s.s.WriteTrace(w) }

// ApplyPath applies the session's campaign to one corpus file named
// relative to the root, reusing and refreshing resident artifacts. The
// path must stay inside the root.
func (s *Session) ApplyPath(rel string) (CampaignFileResult, error) {
	fr, err := s.s.ApplyPath(rel)
	if err != nil {
		return CampaignFileResult{}, err
	}
	return publicCampaignResult(fr), nil
}

// ApplySnippet applies the session's campaign to an in-memory snippet.
// Repeated snippets replay from the session's result cache; the snippet
// never enters the corpus state.
func (s *Session) ApplySnippet(name, src string) (CampaignFileResult, error) {
	fr, err := s.s.ApplySnippet(name, src)
	if err != nil {
		return CampaignFileResult{}, err
	}
	return publicCampaignResult(fr), nil
}

// Invalidate drops every resident artifact, forcing the next request to
// re-derive hashes, word sets, and parse trees. The content-addressed
// disk cache (never stale) is untouched.
func (s *Session) Invalidate() { s.s.Invalidate() }

// SessionStats is a point-in-time snapshot of a session's resident state
// and cumulative counters — the same data GET /v1/sessions/{id}/stats
// serves.
type SessionStats = serve.SessionStats

// Stats snapshots the session.
func (s *Session) Stats() SessionStats { return s.s.Stats() }
