// Package sempatch is the public API of gocci, a semantic patch engine for
// C/C++ in the spirit of Coccinelle, reproducing "Advances in Semantic
// Patching for HPC-oriented Refactorings with Coccinelle" (Martone & Lawall,
// 2025). A semantic patch is a change specification written like a unified
// diff but matched against the program's syntax tree: metavariables abstract
// over subterms, "..." abstracts over statement paths, and rules chain
// through inherited bindings and script rules.
//
// Quickstart:
//
//	p, _ := sempatch.ParsePatch("swap.cocci", `@@
//	expression list el;
//	@@
//	- old_api(el)
//	+ new_api(el)
//	`)
//	res, _ := sempatch.NewApplier(p, sempatch.Options{}).
//		Apply(sempatch.File{Name: "x.c", Src: src})
//	fmt.Print(res.Diffs["x.c"])
package sempatch

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/smpl"
)

// Options selects the accepted C/C++ dialect and engine limits.
type Options struct {
	// CPlusPlus enables C++ constructs (range-for, lambdas, ::).
	CPlusPlus bool
	// Std is the C++ standard (11, 17, 23); 23 enables multi-index
	// subscripts a[x, y, z].
	Std int
	// CUDA enables the <<< >>> kernel-launch tokens.
	CUDA bool
	// UseCTL additionally verifies dots constraints against the function's
	// control-flow graph (path-sensitive `when != e`).
	UseCTL bool
	// MaxEnvs caps the environment set flowing between rules (default 4096).
	MaxEnvs int
	// Defines enables virtual dependency names declared in the patch
	// (`virtual fix_gcc;` + `@r depends on fix_gcc@`), like spatch -D.
	Defines []string
}

func (o Options) internal() core.Options {
	return core.Options{
		CPlusPlus: o.CPlusPlus, Std: o.Std, CUDA: o.CUDA,
		UseCTL: o.UseCTL, MaxEnvs: o.MaxEnvs, Defines: o.Defines,
	}
}

// File is one source file to patch.
type File struct {
	Name string
	Src  string
}

// Result reports a patch application.
type Result struct {
	// Outputs maps file name to (possibly transformed) source text.
	Outputs map[string]string
	// Diffs maps file name to a unified diff; empty when unchanged.
	Diffs map[string]string
	// Matched reports which rules matched at least once.
	Matched map[string]bool
	// MatchCount counts matches per rule.
	MatchCount map[string]int
}

// Changed lists files whose output differs from the input.
func (r *Result) Changed() []string {
	var out []string
	for name, d := range r.Diffs {
		if d != "" {
			out = append(out, name)
		}
	}
	return out
}

// Patch is a parsed semantic patch.
type Patch struct {
	p *smpl.Patch
}

// Rules returns the rule names in order (useful for tooling).
func (p *Patch) Rules() []string {
	out := make([]string, 0, len(p.p.Rules))
	for _, r := range p.p.Rules {
		out = append(out, r.Name)
	}
	return out
}

// ParsePatch parses semantic patch text.
func ParsePatch(name, text string) (*Patch, error) {
	sp, err := smpl.ParsePatch(name, text)
	if err != nil {
		return nil, err
	}
	return &Patch{p: sp}, nil
}

// ParsePatchFile reads and parses a .cocci file.
func ParsePatchFile(path string) (*Patch, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sempatch: %w", err)
	}
	return ParsePatch(path, string(b))
}

// ScriptFunc is a native Go implementation of a script rule: it maps the
// rule's input bindings to its declared outputs.
type ScriptFunc func(inputs map[string]string) (map[string]string, error)

// Applier runs one patch over source files.
type Applier struct {
	eng *core.Engine
}

// NewApplier builds an engine for the patch.
func NewApplier(p *Patch, opts Options) *Applier {
	return &Applier{eng: core.New(p.p, opts.internal())}
}

// RegisterScript installs a Go handler for the named script rule (instead of
// the built-in restricted Python interpreter).
func (a *Applier) RegisterScript(rule string, fn ScriptFunc) *Applier {
	a.eng.RegisterScript(rule, core.ScriptFunc(fn))
	return a
}

// Apply runs the patch over the files.
func (a *Applier) Apply(files ...File) (*Result, error) {
	in := make([]core.SourceFile, len(files))
	for i, f := range files {
		in[i] = core.SourceFile{Name: f.Name, Src: f.Src}
	}
	res, err := a.eng.Run(in)
	if err != nil {
		return nil, err
	}
	return &Result{
		Outputs:    res.Outputs,
		Diffs:      res.Diffs,
		Matched:    res.Matched,
		MatchCount: res.MatchCount,
	}, nil
}

// Apply is the one-shot convenience: parse and run.
func Apply(patchName, patchText string, opts Options, files ...File) (*Result, error) {
	p, err := ParsePatch(patchName, patchText)
	if err != nil {
		return nil, err
	}
	return NewApplier(p, opts).Apply(files...)
}
