// Package sempatch is the public API of gocci, a semantic patch engine for
// C/C++ in the spirit of Coccinelle, reproducing "Advances in Semantic
// Patching for HPC-oriented Refactorings with Coccinelle" (Martone & Lawall,
// 2025). A semantic patch is a change specification written like a unified
// diff but matched against the program's syntax tree: metavariables abstract
// over subterms, "..." abstracts over statement paths, and rules chain
// through inherited bindings and script rules.
//
// Quickstart:
//
//	p, _ := sempatch.ParsePatch("swap.cocci", `@@
//	expression list el;
//	@@
//	- old_api(el)
//	+ new_api(el)
//	`)
//	res, _ := sempatch.NewApplier(p, sempatch.Options{}).
//		Apply(sempatch.File{Name: "x.c", Src: src})
//	fmt.Print(res.Diffs["x.c"])
package sempatch

import (
	"fmt"
	"iter"
	"os"

	"repro/internal/analysis"
	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/obs"
	"repro/internal/smpl"
	"repro/internal/verify"
)

// Finding is one report from a match-only check rule (an SmPL rule with `*`
// star-lines or a `// gocci:check` metadata header): where it fired, the
// interpolated message, its severity, the bound metavariables, and the
// position-independent function-identity pair the baseline keys on. See
// docs/check.md.
type Finding = analysis.Finding

// Diff renders the unified diff between two versions of a file with the
// conventional a/ and b/ name prefixes — the same rendering Result.Diffs
// and FileResult.Diff carry, for callers composing multiple runs (e.g. a
// net diff across sequentially applied patches).
func Diff(name, before, after string) string {
	return diff.Unified("a/"+name, "b/"+name, before, after)
}

// Options selects the accepted C/C++ dialect and engine limits.
type Options struct {
	// CPlusPlus enables C++ constructs (range-for, lambdas, ::).
	CPlusPlus bool
	// Std is the C++ standard (11, 17, 23); 23 enables multi-index
	// subscripts a[x, y, z].
	Std int
	// CUDA enables the <<< >>> kernel-launch tokens.
	CUDA bool
	// UseCTL additionally verifies dots constraints against the function's
	// control-flow graph. Only meaningful for patterns matched by the
	// legacy sequence matcher (see SeqDots): the default CFG dots engine
	// is already path-sensitive.
	UseCTL bool
	// SeqDots selects the legacy syntactic sequence matcher for statement
	// dots instead of the default path-sensitive CFG engine. The two agree
	// on straight-line code; only the CFG engine matches patterns whose
	// anchors sit on different branch arms or across loop back-edges.
	SeqDots bool
	// MaxEnvs caps the environment set flowing between rules (default 4096).
	MaxEnvs int
	// Defines enables virtual dependency names declared in the patch
	// (`virtual fix_gcc;` + `@r depends on fix_gcc@`), like spatch -D.
	Defines []string
	// Workers is the pool size for BatchApplier; <= 0 means GOMAXPROCS.
	// Ignored by the single-threaded Applier.
	Workers int
	// NoPrefilter disables the BatchApplier's required-atom prefilter, so
	// every file is parsed and matched even when it provably cannot be
	// touched by the patch. Outputs are identical either way; disable the
	// filter to surface parse errors in files the patch cannot match, or
	// to measure its effect. Ignored by the single-threaded Applier.
	NoPrefilter bool
	// CacheDir, when non-empty, enables the persistent corpus index rooted
	// at that directory for BatchApplier and Campaign runs: file scans and
	// per-file results are cached by content hash, so re-running a patch
	// over an unchanged corpus skips scanning, parsing, and matching.
	// Outputs are byte-identical with the cache cold, warm, or disabled;
	// invalidation is automatic — editing a file, the patch text, or any
	// result-affecting option changes the key. Ignored by the
	// single-threaded Applier. See docs/batch.md for the on-disk format.
	CacheDir string
	// NoFuncCache disables function-granular processing for BatchApplier and
	// Campaign runs: eligible single-rule patches then match whole files
	// instead of per-function segments. Outputs are byte-identical either
	// way; disable it to measure the incremental pipeline's effect or to
	// force file-level matching. Ignored by the single-threaded Applier.
	NoFuncCache bool
	// Verify runs the post-transform safety checker on every file a
	// BatchApplier or Campaign run changed: capture-avoidance and def-use
	// checks for rewritten identifiers, pragma round-trip checks for
	// directive translations, and an output re-parse. An unsafe finding
	// demotes the edit — the file's output reverts to its input and the
	// findings ride the result as Warnings. Verify mode keys the result
	// cache, so verified and unverified runs never share cached outcomes.
	// Ignored by the single-threaded Applier. See docs/hpc.md.
	Verify bool
	// Tracer, when non-nil, collects pipeline spans for the run: read, hash,
	// prefilter, parse, segment, CFG build, match (attributed per rule),
	// verify, render, and cache traffic, one track per worker. Render the
	// buffer with Tracer.WriteJSON (Chrome trace-event JSON, loadable in
	// Perfetto) or aggregate it with Tracer.Profile. Create one with
	// NewTracer per run; tracing never changes outputs and a nil Tracer
	// costs a single pointer check per instrumentation site. See
	// docs/observability.md.
	Tracer *Tracer
}

// Tracer is a per-run trace buffer for pipeline observability; see
// Options.Tracer and docs/observability.md. The zero value is not usable —
// create tracers with NewTracer.
type Tracer = obs.Tracer

// Profile is the aggregate view of one traced run: per-stage self-time,
// per-rule fire/miss/time attribution, cache hit breakdown, and prefilter
// skip counts. Obtain one with Tracer.Profile after the run completes;
// Format renders the table `gocci --profile` prints.
type Profile = obs.Profile

// NewTracer creates an enabled trace buffer for one run. Hand it to
// Options.Tracer, run, then render with WriteJSON or aggregate with
// Profile. A Tracer must not be shared by concurrent runs — each run gets
// its own.
func NewTracer() *Tracer { return obs.New() }

func (o Options) internal() core.Options {
	return core.Options{
		CPlusPlus: o.CPlusPlus, Std: o.Std, CUDA: o.CUDA,
		UseCTL: o.UseCTL, SeqDots: o.SeqDots, MaxEnvs: o.MaxEnvs, Defines: o.Defines,
	}
}

func (o Options) batch() batch.Options {
	return batch.Options{
		Engine: o.internal(), Workers: o.Workers,
		NoPrefilter: o.NoPrefilter, CacheDir: o.CacheDir, NoFuncCache: o.NoFuncCache,
		Verify: o.Verify, Tracer: o.Tracer,
	}
}

// File is one source file to patch.
type File struct {
	Name string
	Src  string
}

// Result reports a patch application.
type Result struct {
	// Outputs maps file name to (possibly transformed) source text.
	Outputs map[string]string
	// Diffs maps file name to a unified diff; empty when unchanged.
	Diffs map[string]string
	// Matched reports which rules matched at least once.
	Matched map[string]bool
	// MatchCount counts matches per rule.
	MatchCount map[string]int
	// EnvsTruncated reports that the run hit Options.MaxEnvs and dropped
	// matches: outputs are valid but possibly incomplete. Rerun with a
	// larger cap to get every match.
	EnvsTruncated bool
	// Findings are the check-rule reports (match-only star rules and
	// gocci:check rules; empty for pure transform patches).
	Findings []Finding
}

// Changed lists files whose output differs from the input.
func (r *Result) Changed() []string {
	var out []string
	for name, d := range r.Diffs {
		if d != "" {
			out = append(out, name)
		}
	}
	return out
}

// Patch is a parsed semantic patch.
type Patch struct {
	p *smpl.Patch
}

// Virtuals returns the names the patch declares `virtual` — the dependency
// atoms settable through Options.Defines.
func (p *Patch) Virtuals() []string {
	return append([]string(nil), p.p.Virtuals...)
}

// Rules returns the rule names in order (useful for tooling).
func (p *Patch) Rules() []string {
	out := make([]string, 0, len(p.p.Rules))
	for _, r := range p.p.Rules {
		out = append(out, r.Name)
	}
	return out
}

// HasChecks reports whether any rule of the patch is a match-only check
// rule (star-lines or a gocci:check header): applying such a patch emits
// Findings, and a patch of only check rules never changes its input.
func (p *Patch) HasChecks() bool { return p.p.HasChecks() }

// CheckRules returns, in order, the names of the patch's match-only check
// rules. Front ends use it to label such rules distinctly (a check rule that
// "never fired" found nothing to report — it did not fail to rewrite).
func (p *Patch) CheckRules() []string {
	var out []string
	for _, r := range p.p.Rules {
		if r.IsCheck() {
			out = append(out, r.Name)
		}
	}
	return out
}

// FireableRules returns, in order, the names of the rules that can fire —
// match and script rules, whose match counts appear in MatchCount.
// Initialize and finalize rules run unconditionally and are excluded. Front
// ends compare this list against a sweep's match counts to flag rules that
// never fired anywhere (dead weight in a campaign).
func (p *Patch) FireableRules() []string {
	out := []string{}
	for _, r := range p.p.Rules {
		if r.Kind == smpl.MatchRule || r.Kind == smpl.ScriptRule {
			out = append(out, r.Name)
		}
	}
	return out
}

// ParsePatch parses semantic patch text.
func ParsePatch(name, text string) (*Patch, error) {
	sp, err := smpl.ParsePatch(name, text)
	if err != nil {
		return nil, err
	}
	return &Patch{p: sp}, nil
}

// ParsePatchFile reads and parses a .cocci file.
func ParsePatchFile(path string) (*Patch, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sempatch: %w", err)
	}
	return ParsePatch(path, string(b))
}

// ScriptFunc is a native Go implementation of a script rule: it maps the
// rule's input bindings to its declared outputs.
type ScriptFunc func(inputs map[string]string) (map[string]string, error)

// Warning is one finding of the post-transform verifier (Options.Verify).
type Warning struct {
	// Code identifies the check: "capture", "def-use", "pragma-roundtrip",
	// "pragma-clause", or "parse".
	Code string
	// Func is the enclosing function's name, "" for file-scope findings.
	Func string
	// Message describes the finding.
	Message string
	// Unsafe marks findings that demote the edit; advisory findings ride
	// along without demoting.
	Unsafe bool
}

func (w Warning) String() string {
	return verify.Warning{Code: w.Code, Func: w.Func, Message: w.Message, Unsafe: w.Unsafe}.String()
}

func publicWarnings(warns []verify.Warning) []Warning {
	if len(warns) == 0 {
		return nil
	}
	out := make([]Warning, len(warns))
	for i, w := range warns {
		out[i] = Warning{Code: w.Code, Func: w.Func, Message: w.Message, Unsafe: w.Unsafe}
	}
	return out
}

// Applier runs one patch over source files.
type Applier struct {
	eng *core.Engine
}

// NewApplier builds an engine for the patch.
func NewApplier(p *Patch, opts Options) *Applier {
	a := &Applier{eng: core.New(p.p, opts.internal())}
	if opts.Tracer != nil {
		a.eng.SetTrace(opts.Tracer.Track("applier"))
	}
	return a
}

// RegisterScript installs a Go handler for the named script rule (instead of
// the built-in restricted Python interpreter).
func (a *Applier) RegisterScript(rule string, fn ScriptFunc) *Applier {
	a.eng.RegisterScript(rule, core.ScriptFunc(fn))
	return a
}

// Apply runs the patch over the files.
func (a *Applier) Apply(files ...File) (*Result, error) {
	res, err := a.eng.Run(toSource(files))
	if err != nil {
		return nil, err
	}
	return &Result{
		Outputs:       res.Outputs,
		Diffs:         res.Diffs,
		Matched:       res.Matched,
		MatchCount:    res.MatchCount,
		EnvsTruncated: res.EnvsTruncated,
		Findings:      res.Findings,
	}, nil
}

// Apply is the one-shot convenience: parse and run.
func Apply(patchName, patchText string, opts Options, files ...File) (*Result, error) {
	p, err := ParsePatch(patchName, patchText)
	if err != nil {
		return nil, err
	}
	return NewApplier(p, opts).Apply(files...)
}

// FileResult is one file's outcome in a batch run.
type FileResult struct {
	// Name is the input file name.
	Name string
	// Output is the (possibly transformed) source; empty when Err is set.
	Output string
	// Diff is the unified diff; empty when the file is unchanged.
	Diff string
	// MatchCount counts matches per rule in this file.
	MatchCount map[string]int
	// Skipped reports that the required-atom prefilter proved no rule
	// could fire on this file, so it was never parsed; Output equals the
	// input and Diff is empty, exactly as a full run would have produced.
	Skipped bool
	// Cached reports that the whole result — output, diff, match counts —
	// was replayed from the persistent result cache (Options.CacheDir)
	// without scanning, parsing, or matching the file this run. Cached and
	// Skipped are mutually exclusive.
	Cached bool
	// EnvsTruncated reports that this file's run hit Options.MaxEnvs and
	// dropped matches (see Result.EnvsTruncated).
	EnvsTruncated bool
	// FuncsMatched and FuncsCached count this file's function segments
	// matched fresh vs replayed from the function-granular cache; both 0
	// when the patch or file took the file-level path.
	FuncsMatched int
	FuncsCached  int
	// Warnings are the post-transform verifier's findings for this file
	// (only ever set under Options.Verify).
	Warnings []Warning
	// Demoted reports that an unsafe finding reverted the edit: MatchCount
	// still records what matched, but Output equals the input and Diff is
	// empty.
	Demoted bool
	// Findings are the check-rule reports for this file.
	Findings []Finding
	// Parsed reports that this run actually parsed the file (false for
	// prefilter skips and cache replays).
	Parsed bool
	// Err is this file's failure; other files in the batch still complete.
	Err error
}

// Changed reports whether the patch modified the file.
func (r FileResult) Changed() bool { return r.Diff != "" }

// BatchStats aggregates a completed batch run.
type BatchStats struct {
	Files   int // files processed
	Matched int // files where at least one rule matched
	Changed int // files whose output differs from the input
	Errors  int // files that failed (parse or script error)
	Matches int // total rule matches across all files
	Skipped int // files the prefilter rejected without parsing
	Cached  int // files replayed from the persistent result cache
	// FuncsMatched and FuncsCached total the function-granular counters:
	// function segments matched fresh vs replayed across all files.
	FuncsMatched int
	FuncsCached  int
	// Demoted counts files whose edit the verifier reverted; Warnings
	// totals the verifier findings across all files (Options.Verify).
	Demoted  int
	Warnings int
	// Findings totals the check-rule reports across all files.
	Findings int
	// Parsed counts files this run actually parsed (vs skipped/replayed).
	Parsed int
}

// BatchApplier applies one patch across many files concurrently with a
// worker pool of Options.Workers engines. The patch is compiled once and
// shared; each file is patched independently (environments do not flow
// between files), and results stream back in input order regardless of
// which worker finishes first, so output is deterministic for any worker
// count. See docs/batch.md.
type BatchApplier struct {
	r *batch.Runner
}

// NewBatchApplier compiles the patch for concurrent application.
func NewBatchApplier(p *Patch, opts Options) *BatchApplier {
	return &BatchApplier{r: batch.New(p.p, opts.batch())}
}

// RegisterScript installs a Go handler for the named script rule on every
// worker. Call before ApplyAll; the handler runs concurrently and must be
// safe for that. Registering any Go handler disables the persistent result
// cache for this applier (the handler's behaviour is not captured by the
// patch hash the cache keys on); the scan cache stays active.
func (b *BatchApplier) RegisterScript(rule string, fn ScriptFunc) *BatchApplier {
	b.r.RegisterScript(rule, core.ScriptFunc(fn))
	return b
}

// RegisterScriptVersioned is RegisterScript for handlers that declare a
// version string covering everything their behaviour depends on (code
// revision, embedded tables, modes). The version joins the result-cache
// fingerprint, so the persistent result cache stays enabled: bumping the
// version invalidates every cached outcome the handler helped produce.
func (b *BatchApplier) RegisterScriptVersioned(rule, version string, fn ScriptFunc) *BatchApplier {
	b.r.RegisterScriptVersioned(rule, version, core.ScriptFunc(fn))
	return b
}

// CacheStatus reports the persistent cache's state for an applier or
// campaign: whether one is open, where, whether Open had to wipe and
// rebuild an incompatible cache, and how many corrupt entries were dropped
// (and transparently re-derived) so far. Front ends surface the last two so
// cache trouble is never silent.
type CacheStatus struct {
	// Enabled reports that Options.CacheDir named a usable cache.
	Enabled bool
	// Dir is the cache directory.
	Dir string
	// Rebuilt explains why an existing cache was wiped and rebuilt at open
	// ("" when it was not).
	Rebuilt string
	// CorruptEntries counts entries that failed validation on read and
	// were dropped and re-derived. Nonzero means the directory saw outside
	// interference; results are still exact, only the speedup was lost.
	CorruptEntries int64
}

// CacheStatus reports the state of this applier's persistent cache.
func (b *BatchApplier) CacheStatus() CacheStatus { return cacheStatus(b.r.Cache()) }

func cacheStatus(c *cache.Cache) CacheStatus {
	if c == nil {
		return CacheStatus{}
	}
	return CacheStatus{
		Enabled: true, Dir: c.Dir(),
		Rebuilt: c.Rebuilt(), CorruptEntries: c.CorruptEntries(),
	}
}

// ApplyAll streams one FileResult per input file, in input order. Breaking
// out of the loop stops the batch early; memory stays bounded by the worker
// window, not the corpus size. A configuration error (e.g. an
// Options.Defines name not declared virtual in the patch) is delivered
// once, as a single FileResult with an empty Name, instead of once per
// file; ApplyAllFunc returns it as the run error.
func (b *BatchApplier) ApplyAll(files []File) iter.Seq[FileResult] {
	return func(yield func(FileResult) bool) {
		b.r.Run(toSource(files), func(fr batch.FileResult) bool {
			return yield(publicResult(fr))
		})
	}
}

// ApplyAllPaths is ApplyAll over on-disk files: each worker reads its file
// from disk just before patching, so only the in-flight window of the
// corpus is ever resident in memory. Unreadable files report the error in
// their FileResult like any other per-file failure.
func (b *BatchApplier) ApplyAllPaths(paths []string) iter.Seq[FileResult] {
	return func(yield func(FileResult) bool) {
		b.r.RunPaths(paths, func(fr batch.FileResult) bool {
			return yield(publicResult(fr))
		})
	}
}

// ApplyAllFunc is the callback form of ApplyAll: fn runs once per file in
// input order, and the aggregate statistics are returned. A non-nil error
// from fn stops the batch and is returned; per-file failures only count in
// BatchStats.Errors.
func (b *BatchApplier) ApplyAllFunc(files []File, fn func(FileResult) error) (BatchStats, error) {
	st, err := b.r.Collect(toSource(files), wrapCallback(fn))
	return publicStats(st), err
}

// ApplyAllPathsFunc is the callback form of ApplyAllPaths.
func (b *BatchApplier) ApplyAllPathsFunc(paths []string, fn func(FileResult) error) (BatchStats, error) {
	st, err := b.r.CollectPaths(paths, wrapCallback(fn))
	return publicStats(st), err
}

func publicResult(fr batch.FileResult) FileResult {
	return FileResult{
		Name:          fr.Name,
		Output:        fr.Output,
		Diff:          fr.Diff,
		MatchCount:    fr.MatchCount,
		Skipped:       fr.Skipped,
		Cached:        fr.Cached,
		EnvsTruncated: fr.EnvsTruncated,
		FuncsMatched:  fr.FuncsMatched,
		FuncsCached:   fr.FuncsCached,
		Warnings:      publicWarnings(fr.Warnings),
		Demoted:       fr.Demoted,
		Findings:      fr.Findings,
		Parsed:        fr.Parsed,
		Err:           fr.Err,
	}
}

func publicStats(st batch.Stats) BatchStats {
	return BatchStats{
		Files:        st.Files,
		Matched:      st.Matched,
		Changed:      st.Changed,
		Errors:       st.Errors,
		Matches:      st.Matches,
		Skipped:      st.Skipped,
		Cached:       st.Cached,
		FuncsMatched: st.FuncsMatched,
		FuncsCached:  st.FuncsCached,
		Demoted:      st.Demoted,
		Warnings:     st.Warnings,
		Findings:     st.Findings,
		Parsed:       st.Parsed,
	}
}

// PatchOutcome is one campaign member's effect on one file.
type PatchOutcome struct {
	// Patch is the member patch's name (its .cocci path).
	Patch string
	// MatchCount counts matches per rule of this patch in this file.
	MatchCount map[string]int
	// Changed reports this patch modified the file (relative to the text
	// the preceding members left).
	Changed bool
	// Skipped reports the prefilter proved this patch cannot fire here.
	Skipped bool
	// Cached reports this patch's outcome was replayed from the result
	// cache.
	Cached bool
	// EnvsTruncated reports this patch's run hit Options.MaxEnvs.
	EnvsTruncated bool
	// FuncsMatched and FuncsCached count this file's function segments
	// matched fresh vs replayed by this patch's function-granular pipeline.
	FuncsMatched int
	FuncsCached  int
	// Warnings are the post-transform verifier's findings for this patch on
	// this file (only ever set under Options.Verify).
	Warnings []Warning
	// Demoted reports that an unsafe finding reverted this patch's edit:
	// later members saw the text this patch received.
	Demoted bool
	// Findings are this patch's check-rule reports for this file.
	Findings []Finding
}

// CampaignFileResult is one file's outcome across every patch of a
// campaign.
type CampaignFileResult struct {
	// Name is the input file name.
	Name string
	// Output is the file after every patch, in order; empty when Err is
	// set.
	Output string
	// OutputElided reports that a resident run (Session) proved the file
	// unchanged without ever reading it: Output is "" and the file's
	// on-disk content is its own output. Never set by Campaign.
	OutputElided bool
	// Diff is the unified diff from the original input to Output.
	Diff string
	// Patches holds one outcome per member patch, in campaign order.
	Patches []PatchOutcome
	// Parsed reports that the sweep actually parsed the file's text.
	Parsed bool
	// Err is this file's failure; other files in the sweep still complete.
	Err error
}

// Changed reports whether any patch modified the file.
func (r CampaignFileResult) Changed() bool { return r.Diff != "" }

// Findings gathers every member patch's check-rule reports for the file, in
// campaign order.
func (r CampaignFileResult) Findings() []Finding {
	var out []Finding
	for _, o := range r.Patches {
		out = append(out, o.Findings...)
	}
	return out
}

// PatchStats aggregates one campaign member over a completed run.
type PatchStats struct {
	Patch   string // patch name
	Matched int    // files where at least one of its rules matched
	Changed int    // files it modified
	Matches int    // total rule matches
	Skipped int    // files its prefilter rejected
	Cached  int    // files replayed from the result cache
	// FuncsMatched and FuncsCached total the member's function-granular
	// counters across the run.
	FuncsMatched int
	FuncsCached  int
	// Demoted counts files where the verifier reverted this patch's edit;
	// Warnings totals its verifier findings (Options.Verify).
	Demoted  int
	Warnings int
	// Findings totals this patch's check-rule reports across all files.
	Findings int
}

// CampaignStats aggregates a completed campaign run.
type CampaignStats struct {
	Files    int // files processed
	Changed  int // files whose final output differs from the input
	Errors   int // files that failed
	Parsed   int // files the sweep actually parsed (vs replayed/skipped)
	PerPatch []PatchStats
}

// Campaign applies an ordered collection of patches across many files in
// one sweep — the recurring-maintenance workload where a library of
// refactorings is re-run over a slowly-changing tree. Semantics are
// sequential composition per file: patch i+1 sees each file as patch i
// left it, exactly as if the patches had been applied by separate runs in
// order, but each file is parsed at most once and the tree is shared by
// every patch until one actually changes the file. Files are independent,
// so the worker pool, deterministic ordering, and memory bounds of
// BatchApplier carry over; with Options.CacheDir set, per-patch per-file
// results replay from the persistent cache. See docs/batch.md.
type Campaign struct {
	c *batch.Campaign
}

// NewCampaign compiles the patches for one-sweep application. Each name in
// Options.Defines must be declared `virtual` by at least one member patch;
// members that do not declare it simply do not see it.
func NewCampaign(patches []*Patch, opts Options) *Campaign {
	sp := make([]*smpl.Patch, len(patches))
	for i, p := range patches {
		sp[i] = p.p
	}
	return &Campaign{c: batch.NewCampaign(sp, opts.batch())}
}

// RegisterScript installs a Go handler for the named script rule on every
// worker engine of every member patch. Call before ApplyAll; the handler
// runs concurrently and must be safe for that. Like
// BatchApplier.RegisterScript, registering any Go handler disables the
// persistent result cache.
func (c *Campaign) RegisterScript(rule string, fn ScriptFunc) *Campaign {
	c.c.RegisterScript(rule, core.ScriptFunc(fn))
	return c
}

// RegisterScriptVersioned is RegisterScript for handlers that declare a
// version; the version joins every member's result-cache key, keeping the
// persistent result cache enabled (see BatchApplier.RegisterScriptVersioned).
func (c *Campaign) RegisterScriptVersioned(rule, version string, fn ScriptFunc) *Campaign {
	c.c.RegisterScriptVersioned(rule, version, core.ScriptFunc(fn))
	return c
}

// CacheStatus reports the state of this campaign's persistent cache.
func (c *Campaign) CacheStatus() CacheStatus { return cacheStatus(c.c.Cache()) }

// ApplyAll streams one CampaignFileResult per input file, in input order;
// breaking out of the loop stops the sweep early. A configuration error is
// delivered once as a single result with an empty Name.
func (c *Campaign) ApplyAll(files []File) iter.Seq[CampaignFileResult] {
	return func(yield func(CampaignFileResult) bool) {
		c.c.Run(toSource(files), func(fr batch.CampaignFileResult) bool {
			return yield(publicCampaignResult(fr))
		})
	}
}

// ApplyAllPaths is ApplyAll over on-disk files, read lazily inside the
// worker pool.
func (c *Campaign) ApplyAllPaths(paths []string) iter.Seq[CampaignFileResult] {
	return func(yield func(CampaignFileResult) bool) {
		c.c.RunPaths(paths, func(fr batch.CampaignFileResult) bool {
			return yield(publicCampaignResult(fr))
		})
	}
}

// ApplyAllFunc is the callback form of ApplyAll with aggregate and
// per-patch statistics; a non-nil error from fn stops the sweep.
func (c *Campaign) ApplyAllFunc(files []File, fn func(CampaignFileResult) error) (CampaignStats, error) {
	st, err := c.c.Collect(toSource(files), wrapCampaignCallback(fn))
	return publicCampaignStats(st), err
}

// ApplyAllPathsFunc is the callback form of ApplyAllPaths.
func (c *Campaign) ApplyAllPathsFunc(paths []string, fn func(CampaignFileResult) error) (CampaignStats, error) {
	st, err := c.c.CollectPaths(paths, wrapCampaignCallback(fn))
	return publicCampaignStats(st), err
}

func publicCampaignResult(fr batch.CampaignFileResult) CampaignFileResult {
	out := CampaignFileResult{
		Name:         fr.Name,
		Output:       fr.Output,
		OutputElided: fr.OutputElided,
		Diff:         fr.Diff,
		Parsed:       fr.Parsed,
		Err:          fr.Err,
	}
	for _, o := range fr.Patches {
		out.Patches = append(out.Patches, PatchOutcome{
			Patch:         o.Patch,
			MatchCount:    o.MatchCount,
			Changed:       o.Changed,
			Skipped:       o.Skipped,
			Cached:        o.Cached,
			EnvsTruncated: o.EnvsTruncated,
			FuncsMatched:  o.FuncsMatched,
			FuncsCached:   o.FuncsCached,
			Warnings:      publicWarnings(o.Warnings),
			Demoted:       o.Demoted,
			Findings:      o.Findings,
		})
	}
	return out
}

func publicCampaignStats(st batch.CampaignStats) CampaignStats {
	out := CampaignStats{Files: st.Files, Changed: st.Changed, Errors: st.Errors, Parsed: st.Parsed}
	for _, ps := range st.PerPatch {
		out.PerPatch = append(out.PerPatch, PatchStats{
			Patch:        ps.Patch,
			Matched:      ps.Matched,
			Changed:      ps.Changed,
			Matches:      ps.Matches,
			Skipped:      ps.Skipped,
			Cached:       ps.Cached,
			FuncsMatched: ps.FuncsMatched,
			FuncsCached:  ps.FuncsCached,
			Demoted:      ps.Demoted,
			Warnings:     ps.Warnings,
			Findings:     ps.Findings,
		})
	}
	return out
}

func wrapCampaignCallback(fn func(CampaignFileResult) error) func(batch.CampaignFileResult) error {
	if fn == nil {
		return nil
	}
	return func(fr batch.CampaignFileResult) error { return fn(publicCampaignResult(fr)) }
}

func wrapCallback(fn func(FileResult) error) func(batch.FileResult) error {
	if fn == nil {
		return nil
	}
	return func(fr batch.FileResult) error { return fn(publicResult(fr)) }
}

func toSource(files []File) []core.SourceFile {
	in := make([]core.SourceFile, len(files))
	for i, f := range files {
		in[i] = core.SourceFile{Name: f.Name, Src: f.Src}
	}
	return in
}
