package sempatch

// End-to-end CLI integration tests: build the tools with the Go toolchain
// and run them on the shipped testdata, exactly as a user would.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir, once per test binary.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIGocciDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	out, err := exec.Command(bin, "--sp-file", "testdata/rename.cocci", "testdata/setup.c").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci: %v\n%s", err, out)
	}
	s := string(out)
	for _, w := range []string{"-\told_solver_init(g, rank);", "+\tsolver_init_v2(g, rank);", "@@"} {
		if !strings.Contains(s, w) {
			t.Errorf("diff missing %q:\n%s", w, s)
		}
	}
}

func TestCLIGocciInPlace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(t.TempDir(), "setup.c")
	if err := os.WriteFile(work, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "--sp-file", "testdata/rename.cocci", "--in-place", work).CombinedOutput(); err != nil {
		t.Fatalf("gocci --in-place: %v\n%s", err, out)
	}
	got, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("file not rewritten:\n%s", got)
	}
	if strings.Contains(string(got), "old_solver_init") {
		t.Errorf("old calls remain:\n%s", got)
	}
}

// An executable source file (a build script's generated .c, a checked-in
// tool) must stay executable after -r --in-place: the rewrite used to
// hard-code 0644 and clobber the mode. The write is also atomic (temp file
// + rename), which this test can only witness indirectly: the rewritten
// file is complete and carries the original bits.
func TestCLIGocciInPlacePreservesMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	work := filepath.Join(tree, "exec.c")
	if err := os.WriteFile(work, src, 0o755); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-r", "--in-place", tree, "testdata/rename.cocci").CombinedOutput(); err != nil {
		t.Fatalf("gocci -r --in-place: %v\n%s", err, out)
	}
	got, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("file not rewritten:\n%s", got)
	}
	info, err := os.Stat(work)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o755 {
		t.Errorf("mode = %o after --in-place, want 755 preserved", info.Mode().Perm())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gocci-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// A symlinked source must be patched through the link: the atomic rename
// targets the resolved file, never replaces the link with a regular copy.
func TestCLIGocciInPlaceFollowsSymlinks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	real := filepath.Join(root, "real")
	tree := filepath.Join(root, "tree")
	for _, d := range []string{real, tree} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	target := filepath.Join(real, "target.c")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(tree, "link.c")
	if err := os.Symlink(filepath.Join("..", "real", "target.c"), link); err != nil {
		t.Skipf("cannot create symlinks here: %v", err)
	}
	if out, err := exec.Command(bin, "-r", "--in-place", tree, "testdata/rename.cocci").CombinedOutput(); err != nil {
		t.Fatalf("gocci -r --in-place: %v\n%s", err, out)
	}
	if fi, err := os.Lstat(link); err != nil || fi.Mode()&os.ModeSymlink == 0 {
		t.Errorf("link.c is no longer a symlink (mode %v, err %v)", fi.Mode(), err)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("symlink target not rewritten:\n%s", got)
	}
}

func TestCLIGocciRecursive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.MkdirAll(filepath.Join(tree, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.c", "sub/b.c", "sub/c.cpp"} {
		if err := os.WriteFile(filepath.Join(tree, name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// note: .txt files must be ignored by the scanner
	if err := os.WriteFile(filepath.Join(tree, "notes.txt"), []byte("old_solver_init"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The patch is positional here, exercising `gocci -j N -r dir patch.cocci`.
	out, err := exec.Command(bin, "-j", "2", "-r", "--stats", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r: %v\n%s", err, out)
	}
	s := string(out)
	if got := strings.Count(s, "+\tsolver_init_v2(g, rank);"); got != 3 {
		t.Errorf("want 3 patched files in diff, got %d:\n%s", got, s)
	}
	if !strings.Contains(s, "3 files scanned, 0 skipped by prefilter, 0 cached, 3 matched") || !strings.Contains(s, "3 changed") {
		t.Errorf("stats summary missing or wrong:\n%s", s)
	}
	// Diffs must come out in sorted path order regardless of workers.
	ia := strings.Index(s, "a/"+filepath.Join(tree, "a.c"))
	ib := strings.Index(s, "a/"+filepath.Join(tree, "sub/b.c"))
	ic := strings.Index(s, "a/"+filepath.Join(tree, "sub/c.cpp"))
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("diff order not deterministic (indices %d %d %d):\n%s", ia, ib, ic, s)
	}
}

// The prefilter skips files the patch provably cannot touch; --stats
// reports them and --no-prefilter forces them through the parser.
func TestCLIGocciPrefilterStats(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.WriteFile(filepath.Join(tree, "hit.c"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	miss := "void unrelated(void)\n{\n\tnothing_here(1);\n}\n"
	if err := os.WriteFile(filepath.Join(tree, "miss.c"), []byte(miss), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-r", "--stats", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r --stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 files scanned, 1 skipped by prefilter, 0 cached, 1 matched") {
		t.Errorf("stats should count the skipped file:\n%s", out)
	}

	out, err = exec.Command(bin, "-r", "--stats", "--no-prefilter", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r --stats --no-prefilter: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 files scanned, 0 skipped by prefilter, 0 cached, 1 matched") {
		t.Errorf("--no-prefilter should parse everything:\n%s", out)
	}
}

// Several positional .cocci files run as a campaign: each file sees the
// patches in command order, so chain.cocci fires on rename.cocci's output
// and the printed diff is the net effect.
func TestCLIGocciCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.WriteFile(filepath.Join(tree, "a.c"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-r", "--stats", tree,
		"testdata/rename.cocci", "testdata/chain.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci campaign: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "+\tsolver_init_v3(g, rank);") {
		t.Errorf("second patch did not fire on the first's output:\n%s", s)
	}
	if strings.Contains(s, "solver_init_v2") {
		t.Errorf("net diff leaks the intermediate state:\n%s", s)
	}
	for _, w := range []string{
		"1 files scanned, 1 changed",
		"patch testdata/rename.cocci:",
		"patch testdata/chain.cocci:",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("campaign stats missing %q:\n%s", w, s)
		}
	}
}

// In non-recursive mode too, a -D name declared virtual in only one of the
// patches configures that patch and is invisible to the others, and
// --quiet attributes rule match counts to their own patch even when rule
// names collide.
func TestCLIGocciMultiPatchSingleMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	dir := t.TempDir()
	va := filepath.Join(dir, "va.cocci")
	vb := filepath.Join(dir, "vb.cocci")
	vc := filepath.Join(dir, "vc.cocci")
	src := filepath.Join(dir, "t.c")
	writeAll := map[string]string{
		va:  "virtual foo;\n@a depends on foo@\nexpression list el;\n@@\n- alpha(el)\n+ alpha2(el)\n",
		vb:  "@fix@\nexpression list el;\n@@\n- beta(el)\n+ beta2(el)\n",
		vc:  "@fix@\nexpression list el;\n@@\n- beta2(el)\n+ beta3(el)\n",
		src: "void t(void)\n{\n\talpha(1);\n\tbeta(2);\n}\n",
	}
	for path, content := range writeAll {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	out, err := exec.Command(bin, "-D", "foo", va, vb, src).CombinedOutput()
	if err != nil {
		t.Fatalf("-D declared in one patch must not abort the run: %v\n%s", err, out)
	}
	for _, w := range []string{"alpha2(1)", "beta2(2)"} {
		if !strings.Contains(string(out), w) {
			t.Errorf("diff missing %q:\n%s", w, out)
		}
	}
	if err := exec.Command(bin, "-D", "nonsense", va, vb, src).Run(); err == nil {
		t.Error("a define declared in no patch must fail the run")
	}

	// Both patches name their rule `fix` and match once each; the counts
	// must not merge.
	out, err = exec.Command(bin, "--quiet", vb, vc, src).Output()
	if err != nil {
		t.Fatalf("gocci --quiet: %v", err)
	}
	s := string(out)
	if strings.Count(s, "matches=1") != 2 || strings.Contains(s, "matches=2") {
		t.Errorf("per-patch rule counts merged:\n%s", s)
	}
	if !strings.Contains(s, vb+":") || !strings.Contains(s, vc+":") {
		t.Errorf("quiet lines not attributed to their patch:\n%s", s)
	}
}

// A warm --cache-dir run replays results — reported as cached, distinctly
// from prefilter skips — and prints byte-identical diffs.
func TestCLIGocciCacheWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.WriteFile(filepath.Join(tree, "hit.c"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	miss := "void unrelated(void)\n{\n\tnothing_here(1);\n}\n"
	if err := os.WriteFile(filepath.Join(tree, "miss.c"), []byte(miss), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")

	run := func() (string, string) {
		cmd := exec.Command(bin, "-r", "--stats", "--cache-dir", cacheDir, tree, "testdata/rename.cocci")
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("gocci --cache-dir: %v\n%s", err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	coldOut, coldErr := run()
	warmOut, warmErr := run()
	if warmOut != coldOut {
		t.Errorf("warm diffs differ from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if !strings.Contains(coldErr, "1 skipped by prefilter, 0 cached") {
		t.Errorf("cold stats wrong:\n%s", coldErr)
	}
	if !strings.Contains(warmErr, "0 skipped by prefilter, 2 cached") {
		t.Errorf("warm stats should report both files cached, distinct from skipped:\n%s", warmErr)
	}

	// Corrupt every result entry: the next run must drop and rebuild them,
	// still print the right diff, and say what happened.
	err = filepath.WalkDir(filepath.Join(cacheDir, "res"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("{garbage"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	healOut, healErr := run()
	if healOut != coldOut {
		t.Errorf("output after corruption differs:\n%s", healOut)
	}
	if !strings.Contains(healErr, "corrupt cache entries") || !strings.Contains(healErr, "dropped and rebuilt") {
		t.Errorf("corruption not reported with remediation:\n%s", healErr)
	}
	// And the rebuild healed the cache.
	_, finalErr := run()
	if !strings.Contains(finalErr, "2 cached") {
		t.Errorf("cache did not heal:\n%s", finalErr)
	}
}

// An unusable --cache-dir is a hard error with a clear remediation message,
// exit code 1 — never a silent fallback.
func TestCLIGocciCacheDirUnusable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	tree := t.TempDir()
	if err := os.WriteFile(filepath.Join(tree, "a.c"), []byte("void f(void) {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-r", "--cache-dir", notADir, tree, "testdata/rename.cocci").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "delete it or choose another --cache-dir") {
		t.Errorf("no remediation message:\n%s", out)
	}
}

func TestCLIGocciGenAndParse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildTool(t, "gocci-gen")
	out, err := exec.Command(gen, "--shape", "cuda", "--funcs", "2", "--stmts", "1").Output()
	if err != nil {
		t.Fatalf("gocci-gen: %v", err)
	}
	if !strings.Contains(string(out), "cudaMalloc") {
		t.Fatalf("generator output unexpected:\n%s", out)
	}
	cu := filepath.Join(t.TempDir(), "app.cu")
	if err := os.WriteFile(cu, out, 0o644); err != nil {
		t.Fatal(err)
	}

	parse := buildTool(t, "gocci-parse")
	stats, err := exec.Command(parse, "--dump", "stats", "--cuda", cu).Output()
	if err != nil {
		t.Fatalf("gocci-parse: %v", err)
	}
	if !strings.Contains(string(stats), "funcs") {
		t.Errorf("stats output: %s", stats)
	}

	hip := buildTool(t, "gocci-hipify")
	diffOut, err := exec.Command(hip, cu).Output()
	if err != nil {
		t.Fatalf("gocci-hipify: %v", err)
	}
	if !strings.Contains(string(diffOut), "+\thipError_t err = hipMalloc") &&
		!strings.Contains(string(diffOut), "hipMalloc") {
		t.Errorf("hipify diff missing:\n%s", diffOut)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	// no args: exit 2
	err := exec.Command(bin).Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("usage error exit: %v", err)
	}
}

// exitCode runs the command and returns its exit code (0 on success).
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", bin, args, err)
	}
	return ee.ExitCode(), string(out)
}

// TestCLIExitCodes audits the documented contract (docs/cli.md): usage
// errors exit 2, patch/parse/runtime errors exit 1, and a run that applied
// changes — or had none to apply — exits 0.
func TestCLIExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	dir := t.TempDir()
	okSrc := filepath.Join(dir, "ok.c")
	if err := os.WriteFile(okSrc, []byte("void f(void)\n{\n\told_solver_init(0, 1);\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	brokenSrc := filepath.Join(dir, "broken.c")
	// Contains the patch's required atom, so even the prefilter cannot hide
	// its parse error.
	if err := os.WriteFile(brokenSrc, []byte("old_solver_init(\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badPatch := filepath.Join(dir, "bad.cocci")
	if err := os.WriteFile(badPatch, []byte("@r@\nthis is not smpl\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Usage errors: exit 2.
	for _, args := range [][]string{
		{},                        // nothing at all
		{"testdata/rename.cocci"}, // patch but no sources
		{"--bogus-flag", okSrc},   // unknown flag (flag package convention)
	} {
		if code, out := exitCode(t, bin, args...); code != 2 {
			t.Errorf("gocci %v: exit %d, want 2\n%s", args, code, out)
		}
	}

	// Patch and parse errors: exit 1.
	if code, out := exitCode(t, bin, "--sp-file", filepath.Join(dir, "missing.cocci"), okSrc); code != 1 {
		t.Errorf("missing patch file: exit %d, want 1\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--sp-file", badPatch, okSrc); code != 1 {
		t.Errorf("unparsable patch: exit %d, want 1\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--sp-file", "testdata/rename.cocci", brokenSrc); code != 1 {
		t.Errorf("unparsable source (single mode): exit %d, want 1\n%s", code, out)
	}

	// A per-file failure in batch mode still processes the other files,
	// then exits 1 (docs/cli.md).
	code, out := exitCode(t, bin, "-r", dir, "testdata/rename.cocci")
	if code != 1 {
		t.Errorf("batch with one broken file: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "solver_init_v2(0, 1)") {
		t.Errorf("batch with one broken file must still patch the others:\n%s", out)
	}

	// Success: exit 0 both when changes were applied and when there were
	// none to apply.
	if code, out := exitCode(t, bin, "--sp-file", "testdata/rename.cocci", okSrc); code != 0 {
		t.Errorf("applied with changes: exit %d, want 0\n%s", code, out)
	}
	noMatch := filepath.Join(dir, "nomatch.c")
	if err := os.WriteFile(noMatch, []byte("void g(void)\n{\n\tidle();\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, "--sp-file", "testdata/rename.cocci", noMatch); code != 0 {
		t.Errorf("no changes: exit %d, want 0\n%s", code, out)
	}

	// Check mode: findings at or above --fail-on exit 1, a clean tree exits
	// 0, and check-specific usage errors exit 2.
	checkPatch := filepath.Join(dir, "check.cocci")
	if err := os.WriteFile(checkPatch, []byte(
		"// gocci:check id=no-old-init severity=warning msg=\"legacy init old_solver_init(A, B)\"\n"+
			"@legacy@\nexpression A, B;\n@@\n* old_solver_init(A, B);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, "--check", "--fail-on", "warning", "--sp-file", checkPatch, okSrc); code != 1 {
		t.Errorf("check with findings at threshold: exit %d, want 1\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--check", "--sp-file", checkPatch, okSrc); code != 0 {
		// Default --fail-on is error; these findings are warnings.
		t.Errorf("check with findings below threshold: exit %d, want 0\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--check", "--fail-on", "info", "--sp-file", checkPatch, noMatch); code != 0 {
		t.Errorf("clean check: exit %d, want 0\n%s", code, out)
	}
	for _, args := range [][]string{
		{"--check", "--in-place", "--sp-file", checkPatch, okSrc},
		{"--check", "--format", "xml", "--sp-file", checkPatch, okSrc},
		{"--check", "--fail-on", "fatal", "--sp-file", checkPatch, okSrc},
		{"--check", "--baseline-write", "--sp-file", checkPatch, okSrc},
		{"--baseline", "b.json", "--sp-file", checkPatch, okSrc},
	} {
		if code, out := exitCode(t, bin, args...); code != 2 {
			t.Errorf("gocci %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

// TestCLICheckMode exercises the static-analysis surface end to end:
// reporter formats, the warm-cache "parsed: 0" sweep, the baseline
// write/suppress workflow across unrelated edits, and the --stats labelling
// of silent check rules.
func TestCLICheckMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	dir := t.TempDir()
	tree := filepath.Join(dir, "tree")
	if err := os.MkdirAll(tree, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "int f(int x)\n{\n\tsync_api(x);\n\treturn x;\n}\nint g(int y)\n{\n\treturn y + 1;\n}\n"
	if err := os.WriteFile(filepath.Join(tree, "a.c"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	patch := filepath.Join(dir, "check.cocci")
	if err := os.WriteFile(patch, []byte(
		"// gocci:check id=sync-call severity=error msg=\"blocking call of sync_api(E)\"\n"+
			"@s@\nexpression E;\n@@\n* sync_api(E);\n\n"+
			"// gocci:check id=quiet severity=info msg=\"never present\"\n"+
			"@q@\n@@\n* never_called_anywhere();\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Text format: compiler style, message interpolated, and no diff output.
	code, out := exitCode(t, bin, "--check", "--sp-file", patch, filepath.Join(tree, "a.c"))
	if code != 1 {
		t.Fatalf("check: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "a.c:3:2: error: blocking call of sync_api(x) [sync-call]") {
		t.Errorf("text finding missing:\n%s", out)
	}
	if strings.Contains(out, "@@") || strings.Contains(out, "---") {
		t.Errorf("check mode printed a diff:\n%s", out)
	}

	// NDJSON format: one JSON object per finding.
	_, out = exitCode(t, bin, "--check", "--format", "json", "--sp-file", patch, filepath.Join(tree, "a.c"))
	if !strings.Contains(out, `"check":"sync-call"`) || !strings.Contains(out, `"severity":"error"`) {
		t.Errorf("json finding missing:\n%s", out)
	}

	// SARIF format parses and carries the baseline fingerprint.
	_, out = exitCode(t, bin, "--check", "--format", "sarif", "--sp-file", patch, filepath.Join(tree, "a.c"))
	if !strings.Contains(out, `"version": "2.1.0"`) || !strings.Contains(out, "gocciBaseline/v1") {
		t.Errorf("sarif output missing required fields:\n%s", out)
	}

	// Warm sweep: the second recursive run replays from the cache and
	// reports parsed: 0, with the findings intact.
	cacheDir := filepath.Join(dir, "cache")
	code, out = exitCode(t, bin, "--check", "--fail-on", "info", "-r", "--cache-dir", cacheDir, tree, patch)
	if code != 1 || !strings.Contains(out, "parsed: 1") {
		t.Fatalf("cold sweep: exit %d\n%s", code, out)
	}
	code, out = exitCode(t, bin, "--check", "--fail-on", "info", "-r", "--cache-dir", cacheDir, tree, patch)
	if code != 1 {
		t.Fatalf("warm sweep: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "parsed: 0") {
		t.Errorf("warm sweep did not replay from the cache:\n%s", out)
	}
	if !strings.Contains(out, "[sync-call]") {
		t.Errorf("warm sweep lost the findings:\n%s", out)
	}

	// Baseline workflow: record, then suppress — including across an edit
	// to an unrelated function, which must introduce zero new findings.
	baseline := filepath.Join(dir, "bl.json")
	if code, out := exitCode(t, bin, "--check", "--baseline", baseline, "--baseline-write", "-r", tree, patch); code != 0 {
		t.Fatalf("baseline write: exit %d\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--check", "--baseline", baseline, "-r", tree, patch); code != 0 || !strings.Contains(out, "suppressed by baseline") {
		t.Fatalf("baseline run: exit %d\n%s", code, out)
	}
	edited := strings.Replace(src, "return y + 1;", "int z = y * 2;\n\treturn z + 1;", 1)
	if edited == src {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(filepath.Join(tree, "a.c"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = exitCode(t, bin, "--check", "--baseline", baseline, "-r", tree, patch)
	if code != 0 {
		t.Fatalf("baseline after unrelated edit: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "0 findings") || !strings.Contains(out, "1 suppressed by baseline") {
		t.Errorf("unrelated edit produced new findings:\n%s", out)
	}

	// --stats labels a silent check rule distinctly from a silent
	// transform rule.
	_, out = exitCode(t, bin, "--check", "--stats", "--sp-file", patch, filepath.Join(tree, "a.c"))
	if !strings.Contains(out, "check rule q never fired") {
		t.Errorf("silent check rule not labelled:\n%s", out)
	}
}

// TestCLIVet exercises the patch linter subcommand: clean patches exit 0,
// patches with issues print them and exit 1, and no arguments is a usage
// error.
func TestCLIVet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	dir := t.TempDir()

	if code, out := exitCode(t, bin, "vet"); code != 2 {
		t.Errorf("vet without args: exit %d, want 2\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "vet", "testdata/rename.cocci"); code != 0 {
		t.Errorf("vet clean patch: exit %d, want 0\n%s", code, out)
	}
	bad := filepath.Join(dir, "bad.cocci")
	if err := os.WriteFile(bad, []byte(
		"@a@\nexpression E;\nexpression Dead;\n@@\n- f(E);\n+ g(E);\n\n"+
			"@b depends on nosuchrule@\nexpression E;\n@@\n- h(E);\n+ k(E);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := exitCode(t, bin, "vet", bad)
	if code != 1 {
		t.Errorf("vet with issues: exit %d, want 1\n%s", code, out)
	}
	for _, w := range []string{"unused-metavar", "unreachable-rule", "Dead"} {
		if !strings.Contains(out, w) {
			t.Errorf("vet output missing %q:\n%s", w, out)
		}
	}
}

// TestCLIVersionFlag pins the shared --version convention across all six
// tools: exit 0, "tool version" on stdout, and -h usage output leading
// with the same version line.
func TestCLIVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tool := range []string{"gocci", "gocci-parse", "gocci-gen", "gocci-hipify", "gocci-acc2omp", "gocci-serve"} {
		bin := buildTool(t, tool)
		out, err := exec.Command(bin, "--version").Output()
		if err != nil {
			t.Errorf("%s --version: %v", tool, err)
			continue
		}
		fields := strings.Fields(string(out))
		if len(fields) != 2 || fields[0] != tool || fields[1] == "" {
			t.Errorf("%s --version printed %q, want %q + version", tool, out, tool)
		}
		// -h leads with the same "tool version" line (exit 0, flag package
		// convention for an explicit help request).
		help, _ := exec.Command(bin, "-h").CombinedOutput()
		if !strings.HasPrefix(string(help), fields[0]+" "+fields[1]+"\n") {
			t.Errorf("%s -h does not lead with the version line:\n%s", tool, help)
		}
	}
}

// TestCLIServe drives the daemon end to end exactly as CI does: start it
// on an ephemeral port, wait for /healthz, apply a snippet, sweep twice,
// and verify the warm sweep reports cached results and zero parses.
func TestCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-serve")

	// Usage and startup failures first: exit 2 and 1 respectively.
	if code, out := exitCode(t, bin); code != 2 {
		t.Errorf("no args: exit %d, want 2\n%s", code, out)
	}
	if code, out := exitCode(t, bin, "--root", filepath.Join(t.TempDir(), "nope"), "testdata/rename.cocci"); code != 1 {
		t.Errorf("missing root: exit %d, want 1\n%s", code, out)
	}

	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	for _, name := range []string{"a.c", "b.c"} {
		if err := os.WriteFile(filepath.Join(root, name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command(bin, "--addr", "127.0.0.1:0", "--root", root, "--watch", "0", "testdata/rename.cocci")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	// The daemon announces its bound address on stderr.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "on http://"); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatal("daemon never announced its address")
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
		}
		return string(b)
	}

	if h := get("/healthz"); !strings.Contains(h, `"status":"ok"`) {
		t.Fatalf("healthz: %s", h)
	}
	apply := post("/v1/apply", `{"session":"default","file":"a.c"}`)
	if !strings.Contains(apply, "solver_init_v2") {
		t.Errorf("apply response missing the rewrite: %s", apply)
	}
	post("/v1/sessions/default/run", "")
	warm := post("/v1/sessions/default/run", "")
	if !strings.Contains(warm, `"parsed":0`) {
		t.Errorf("warm sweep re-parsed unchanged files: %s", warm)
	}
	if strings.Contains(warm, `"cached":0,`) {
		t.Errorf("warm sweep reported nothing cached: %s", warm)
	}
	if m := get("/metrics"); !strings.Contains(m, "gocci_serve_sessions 1") {
		t.Errorf("metrics: %s", m)
	}
}

func TestCLIGocciInfer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-infer")
	cocci := filepath.Join(t.TempDir(), "inferred.cocci")
	out, err := exec.Command(bin, "-o", cocci, "--rule", "lift",
		"testdata/infer_before.c", "testdata/infer_after.c").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci-infer: %v\n%s", err, out)
	}
	b, err := os.ReadFile(cocci)
	if err != nil {
		t.Fatal(err)
	}
	sp := string(b)
	for _, w := range []string{"@lift@", "- ", "+ ", "new_api"} {
		if !strings.Contains(sp, w) {
			t.Errorf("inferred patch missing %q:\n%s", w, sp)
		}
	}

	// The emitted .cocci must be directly usable by the gocci front end and
	// reproduce the demonstrated edit.
	gocci := buildTool(t, "gocci")
	diff, err := exec.Command(gocci, "--sp-file", cocci, "testdata/infer_before.c").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci with inferred patch: %v\n%s", err, diff)
	}
	if !strings.Contains(string(diff), "new_api") {
		t.Errorf("inferred patch did not rewrite the before file:\n%s", diff)
	}
}
