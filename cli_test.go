package sempatch

// End-to-end CLI integration tests: build the tools with the Go toolchain
// and run them on the shipped testdata, exactly as a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a temp dir, once per test binary.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIGocciDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	out, err := exec.Command(bin, "--sp-file", "testdata/rename.cocci", "testdata/setup.c").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci: %v\n%s", err, out)
	}
	s := string(out)
	for _, w := range []string{"-\told_solver_init(g, rank);", "+\tsolver_init_v2(g, rank);", "@@"} {
		if !strings.Contains(s, w) {
			t.Errorf("diff missing %q:\n%s", w, s)
		}
	}
}

func TestCLIGocciInPlace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(t.TempDir(), "setup.c")
	if err := os.WriteFile(work, src, 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "--sp-file", "testdata/rename.cocci", "--in-place", work).CombinedOutput(); err != nil {
		t.Fatalf("gocci --in-place: %v\n%s", err, out)
	}
	got, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("file not rewritten:\n%s", got)
	}
	if strings.Contains(string(got), "old_solver_init") {
		t.Errorf("old calls remain:\n%s", got)
	}
}

// An executable source file (a build script's generated .c, a checked-in
// tool) must stay executable after -r --in-place: the rewrite used to
// hard-code 0644 and clobber the mode. The write is also atomic (temp file
// + rename), which this test can only witness indirectly: the rewritten
// file is complete and carries the original bits.
func TestCLIGocciInPlacePreservesMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	work := filepath.Join(tree, "exec.c")
	if err := os.WriteFile(work, src, 0o755); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-r", "--in-place", tree, "testdata/rename.cocci").CombinedOutput(); err != nil {
		t.Fatalf("gocci -r --in-place: %v\n%s", err, out)
	}
	got, err := os.ReadFile(work)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("file not rewritten:\n%s", got)
	}
	info, err := os.Stat(work)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o755 {
		t.Errorf("mode = %o after --in-place, want 755 preserved", info.Mode().Perm())
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gocci-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// A symlinked source must be patched through the link: the atomic rename
// targets the resolved file, never replaces the link with a regular copy.
func TestCLIGocciInPlaceFollowsSymlinks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	real := filepath.Join(root, "real")
	tree := filepath.Join(root, "tree")
	for _, d := range []string{real, tree} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	target := filepath.Join(real, "target.c")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(tree, "link.c")
	if err := os.Symlink(filepath.Join("..", "real", "target.c"), link); err != nil {
		t.Skipf("cannot create symlinks here: %v", err)
	}
	if out, err := exec.Command(bin, "-r", "--in-place", tree, "testdata/rename.cocci").CombinedOutput(); err != nil {
		t.Fatalf("gocci -r --in-place: %v\n%s", err, out)
	}
	if fi, err := os.Lstat(link); err != nil || fi.Mode()&os.ModeSymlink == 0 {
		t.Errorf("link.c is no longer a symlink (mode %v, err %v)", fi.Mode(), err)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "solver_init_v2(g, rank);") {
		t.Errorf("symlink target not rewritten:\n%s", got)
	}
}

func TestCLIGocciRecursive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.MkdirAll(filepath.Join(tree, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.c", "sub/b.c", "sub/c.cpp"} {
		if err := os.WriteFile(filepath.Join(tree, name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// note: .txt files must be ignored by the scanner
	if err := os.WriteFile(filepath.Join(tree, "notes.txt"), []byte("old_solver_init"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The patch is positional here, exercising `gocci -j N -r dir patch.cocci`.
	out, err := exec.Command(bin, "-j", "2", "-r", "--stats", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r: %v\n%s", err, out)
	}
	s := string(out)
	if got := strings.Count(s, "+\tsolver_init_v2(g, rank);"); got != 3 {
		t.Errorf("want 3 patched files in diff, got %d:\n%s", got, s)
	}
	if !strings.Contains(s, "3 files scanned, 0 skipped by prefilter, 3 matched") || !strings.Contains(s, "3 changed") {
		t.Errorf("stats summary missing or wrong:\n%s", s)
	}
	// Diffs must come out in sorted path order regardless of workers.
	ia := strings.Index(s, "a/"+filepath.Join(tree, "a.c"))
	ib := strings.Index(s, "a/"+filepath.Join(tree, "sub/b.c"))
	ic := strings.Index(s, "a/"+filepath.Join(tree, "sub/c.cpp"))
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("diff order not deterministic (indices %d %d %d):\n%s", ia, ib, ic, s)
	}
}

// The prefilter skips files the patch provably cannot touch; --stats
// reports them and --no-prefilter forces them through the parser.
func TestCLIGocciPrefilterStats(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	src, err := os.ReadFile("testdata/setup.c")
	if err != nil {
		t.Fatal(err)
	}
	tree := t.TempDir()
	if err := os.WriteFile(filepath.Join(tree, "hit.c"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	miss := "void unrelated(void)\n{\n\tnothing_here(1);\n}\n"
	if err := os.WriteFile(filepath.Join(tree, "miss.c"), []byte(miss), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-r", "--stats", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r --stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 files scanned, 1 skipped by prefilter, 1 matched") {
		t.Errorf("stats should count the skipped file:\n%s", out)
	}

	out, err = exec.Command(bin, "-r", "--stats", "--no-prefilter", tree, "testdata/rename.cocci").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci -r --stats --no-prefilter: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 files scanned, 0 skipped by prefilter, 1 matched") {
		t.Errorf("--no-prefilter should parse everything:\n%s", out)
	}
}

func TestCLIGocciGenAndParse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildTool(t, "gocci-gen")
	out, err := exec.Command(gen, "--shape", "cuda", "--funcs", "2", "--stmts", "1").Output()
	if err != nil {
		t.Fatalf("gocci-gen: %v", err)
	}
	if !strings.Contains(string(out), "cudaMalloc") {
		t.Fatalf("generator output unexpected:\n%s", out)
	}
	cu := filepath.Join(t.TempDir(), "app.cu")
	if err := os.WriteFile(cu, out, 0o644); err != nil {
		t.Fatal(err)
	}

	parse := buildTool(t, "gocci-parse")
	stats, err := exec.Command(parse, "--dump", "stats", "--cuda", cu).Output()
	if err != nil {
		t.Fatalf("gocci-parse: %v", err)
	}
	if !strings.Contains(string(stats), "funcs") {
		t.Errorf("stats output: %s", stats)
	}

	hip := buildTool(t, "gocci-hipify")
	diffOut, err := exec.Command(hip, cu).Output()
	if err != nil {
		t.Fatalf("gocci-hipify: %v", err)
	}
	if !strings.Contains(string(diffOut), "+\thipError_t err = hipMalloc") &&
		!strings.Contains(string(diffOut), "hipMalloc") {
		t.Errorf("hipify diff missing:\n%s", diffOut)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	// no args: exit 2
	err := exec.Command(bin).Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("usage error exit: %v", err)
	}
}
