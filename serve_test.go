package sempatch

// Public-API and acceptance tests for the resident serving daemon: a warm
// sweep after editing k of N corpus files must parse exactly k files
// (pinned via cparse.Parses(), like TestCampaignParsesOnce), and its
// outputs must be byte-identical to a cold batch run over the same tree.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/cparse"
	"repro/internal/serve"
)

// writeServeCorpus materialises a parity-style corpus on disk: every
// fourth file calls the legacy API. Mtimes land an hour in the past so
// test edits are always visible to stat-based revalidation.
func writeServeCorpus(t *testing.T, n int) string {
	t.Helper()
	root := t.TempDir()
	past := time.Now().Add(-time.Hour)
	for i := 0; i < n; i++ {
		src := codegen.Mixed(codegen.Config{Funcs: 3 + i%3, StmtsPerFunc: 2, Seed: int64(i + 1)})
		if i%4 == 0 {
			src += fmt.Sprintf("\nvoid migrate_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i, i)
		}
		path := filepath.Join(root, fmt.Sprintf("src%02d.c", i))
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(path, past, past); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func corpusPaths(t *testing.T, root string) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".c" {
			paths = append(paths, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// sweep POSTs one /v1/sessions/{id}/run and decodes the NDJSON stream.
func sweep(t *testing.T, url string) (map[string]serve.RunLine, *serve.RunSummary) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	files := map[string]serve.RunLine{}
	var summary *serve.RunSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line serve.RunLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" && line.Name == "" {
			t.Fatalf("run failed: %s", line.Error)
		}
		if line.Summary != nil {
			summary = line.Summary
			continue
		}
		files[line.Name] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	return files, summary
}

// TestServeParity is the acceptance pin for the resident daemon: a warm
// POST /v1/sessions/{id}/run after editing k of N corpus files parses
// exactly k files, and its outputs are byte-identical to a cold batch run
// over the same tree.
func TestServeParity(t *testing.T) {
	const n, k = 12, 3
	root := writeServeCorpus(t, n)
	patch, err := ParsePatch("parity.cocci", parityPatch)
	if err != nil {
		t.Fatal(err)
	}

	server := NewServer(Options{Workers: 4})
	defer server.Close()
	if _, err := server.AddSession(SessionConfig{
		ID:      "par",
		Root:    root,
		Patches: []*Patch{patch},
		Options: Options{Workers: 4},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	runURL := ts.URL + "/v1/sessions/par/run"

	// Cold sweep warms the session; the next unchanged sweep replays all
	// results and parses nothing.
	if _, cold := sweep(t, runURL); cold.Files != n || cold.Errors != 0 {
		t.Fatalf("cold sweep: %+v", cold)
	}
	_, warm := sweep(t, runURL)
	if warm.Parsed != 0 || warm.Cached != n {
		t.Fatalf("warm sweep parsed=%d cached=%d, want 0/%d", warm.Parsed, warm.Cached, n)
	}

	// Edit k files — each gains a call the patch rewrites, so each must be
	// re-parsed; N-k stay untouched.
	for i, idx := range []int{1, 4, 7} {
		path := filepath.Join(root, fmt.Sprintf("src%02d.c", idx))
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src = append(src, []byte(fmt.Sprintf("\nvoid edited_%d(int n)\n{\n\tlegacy_halo_exchange(n, %d);\n}\n", i, 100+i))...)
		if err := os.WriteFile(path, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	before := cparse.Parses()
	edited, sum := sweep(t, runURL+"?output=1")
	if got := cparse.Parses() - before; got != k {
		t.Errorf("warm sweep after editing %d files parsed %d files, want exactly %d", k, got, k)
	}
	if sum.Parsed != k {
		t.Errorf("summary reports parsed=%d, want %d", sum.Parsed, k)
	}

	// Byte parity with a cold batch run over the same tree: diffs always,
	// outputs where the stream carries them; an elided output asserts the
	// file is unchanged, i.e. its on-disk content is the batch output.
	paths := corpusPaths(t, root)
	if len(paths) != n {
		t.Fatalf("corpus has %d files, want %d", len(paths), n)
	}
	_, err = NewBatchApplier(patch, Options{Workers: 1}).ApplyAllPathsFunc(paths, func(fr FileResult) error {
		if fr.Err != nil {
			return fr.Err
		}
		line, ok := edited[fr.Name]
		if !ok {
			t.Errorf("%s missing from the streamed sweep", fr.Name)
			return nil
		}
		if line.Diff != fr.Diff {
			t.Errorf("%s: warm daemon diff differs from cold batch run", fr.Name)
		}
		if line.Output != nil {
			if *line.Output != fr.Output {
				t.Errorf("%s: warm daemon output differs from cold batch run", fr.Name)
			}
			return nil
		}
		// Elided output: the daemon proved the file unchanged without
		// reading it, so the on-disk text must be the batch output.
		if fr.Changed() {
			t.Errorf("%s: output elided but the batch run changed the file", fr.Name)
			return nil
		}
		disk, err := os.ReadFile(fr.Name)
		if err != nil {
			return err
		}
		if string(disk) != fr.Output {
			t.Errorf("%s: on-disk content is not the batch output", fr.Name)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeLibrary exercises the daemon as a plain library — no HTTP — the
// way an editor integration or build system would embed it.
func TestServeLibrary(t *testing.T) {
	root := writeServeCorpus(t, 8)
	patch, err := ParsePatch("parity.cocci", parityPatch)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(Options{})
	defer server.Close()
	sess, err := server.AddSession(SessionConfig{
		Root:    root,
		Patches: []*Patch{patch},
		Options: Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := server.Session("default"); !ok || got.ID() != "default" {
		t.Fatalf("default session lookup failed: %v %v", got, ok)
	}

	st, err := sess.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 8 || st.Changed != 2 {
		t.Fatalf("sweep stats: %+v", st)
	}
	warm, err := sess.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Parsed != 0 || warm.Cached != 8 {
		t.Errorf("warm library sweep parsed=%d cached=%d", warm.Parsed, warm.Cached)
	}

	fr, err := sess.ApplySnippet("s.c", "void f(int n)\n{\n\tlegacy_halo_exchange(n, 5);\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Changed() || !strings.Contains(fr.Output, "halo_exchange_v2(n, 5)") {
		t.Errorf("snippet apply: %+v", fr)
	}

	stats := sess.Stats()
	if stats.Runs != 2 || stats.Applies != 1 || stats.TrackedFiles != 8 {
		t.Errorf("session stats: %+v", stats)
	}
	sess.Invalidate()
	if sess.Stats().TrackedFiles != 0 {
		t.Error("invalidate did not clear the validation table")
	}

	// The second session id collides; the error is immediate.
	if _, err := server.AddSession(SessionConfig{Root: root, Patches: []*Patch{patch}}); err == nil {
		t.Error("duplicate session id must be rejected")
	}
}

// TestServeCheckCLIParity is the check-mode acceptance pin: the NDJSON
// finding lines streamed by POST /v1/sessions/{id}/check must be
// byte-identical to what `gocci --check --format json` prints over the
// same tree with the same patch.
func TestServeCheckCLIParity(t *testing.T) {
	const checkParityPatch = `// gocci:check id=legacy-call severity=warning msg="legacy call with n"
@legacycall@
expression n, tag;
@@
* legacy_halo_exchange(n, tag);
`
	root := writeServeCorpus(t, 8)
	patchPath := filepath.Join(t.TempDir(), "check.cocci")
	if err := os.WriteFile(patchPath, []byte(checkParityPatch), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := buildTool(t, "gocci")
	cmd := exec.Command(bin, "--check", "--format", "json", "-r", root, "--sp-file", patchPath)
	cliOut, err := cmd.Output()
	// Findings at warning severity with the default --fail-on error keep
	// the exit status 0; any other failure is real.
	if err != nil {
		t.Fatalf("cli check: %v", err)
	}
	if len(cliOut) == 0 {
		t.Fatal("cli check reported no findings; the corpus must trip the rule")
	}

	patch, err := ParsePatch("check.cocci", checkParityPatch)
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(Options{Workers: 2})
	defer server.Close()
	if _, err := server.AddSession(SessionConfig{
		ID:      "chk",
		Root:    root,
		Patches: []*Patch{patch},
		Options: Options{Workers: 2},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sessions/chk/check", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("check: status %d: %s", resp.StatusCode, body)
	}
	// Drop the trailing summary line; everything before it must match the
	// CLI stream byte for byte.
	idx := strings.LastIndexByte(strings.TrimSuffix(string(body), "\n"), '\n')
	if idx < 0 {
		t.Fatalf("check stream has no finding lines: %s", body)
	}
	serveFindings := string(body)[:idx+1]
	if serveFindings != string(cliOut) {
		t.Errorf("serve findings diverge from CLI findings:\n--- cli\n%s--- serve\n%s", cliOut, serveFindings)
	}
}
