package sempatch

import (
	"repro/internal/cparse"
	"repro/internal/infer"
)

// InferPair is one before/after demonstration for patch inference: two
// versions of a C/C++ source file. A pair may contain several changed
// functions; each becomes one example, and verification always replays the
// whole file.
type InferPair struct {
	// Name labels the pair in diagnostics.
	Name string
	// Before and After are the two full file sources.
	Before string
	After  string
}

// InferResult is a successfully inferred and verified patch.
type InferResult struct {
	// Patch is the compiled patch, ready for NewApplier/NewBatchApplier.
	Patch *Patch
	// Cocci is the rendered .cocci text.
	Cocci string
	// Metas maps each declared metavariable to its kind keyword.
	Metas map[string]string
	// Examples names the function examples the patch was inferred from.
	Examples []string
	// Variant reports which abstraction level survived verification:
	// "abstracted", "abstracted/full-context", "concrete", or
	// "concrete/full-context".
	Variant string
	// Notes carries non-fatal observations (variants the oracle rejected
	// before one succeeded).
	Notes []string
}

// InferError is a structured inference failure: the offending pair (and,
// for cross-example irreconcilability, the second pair), the pipeline stage
// that failed, and — when the failure is a subtree that could not be
// generalized — that subtree's source text.
type InferError struct {
	// Pair is the offending pair or example name.
	Pair string
	// Other is the second example for irreconcilable divergences.
	Other string
	// Stage is the failing pipeline stage: "input", "parse", "align",
	// "generalize", "compile", or "verify".
	Stage string
	// Subtree is the source text of the subtree that failed to generalize.
	Subtree string
	// Detail is the human-readable specifics.
	Detail string

	inner *infer.PairError
}

func (e *InferError) Error() string { return e.inner.Error() }

// Infer derives one semantic patch from before/after example pairs and
// verifies it in-process: the patch is compiled through the standard front
// end and applied to every pair's "before"; any output not byte-identical
// to the "after" rejects that abstraction level, and the most abstract
// variant surviving the oracle wins. On failure the error is an
// *InferError naming the offending pair and stage.
//
// ruleName names the emitted rule ("" means "inferred"); opts selects the
// dialect for both parsing the examples and the verification runs.
func Infer(ruleName string, opts Options, pairs ...InferPair) (*InferResult, error) {
	in := make([]infer.Pair, len(pairs))
	for i, p := range pairs {
		in[i] = infer.Pair{Name: p.Name, Before: p.Before, After: p.After}
	}
	res, err := infer.Infer(in, infer.Options{
		RuleName: ruleName,
		Parse:    inferParseOpts(opts),
		Engine:   opts.internal(),
	})
	if err != nil {
		if pe, ok := err.(*infer.PairError); ok {
			return nil, &InferError{Pair: pe.Pair, Other: pe.Other, Stage: pe.Stage,
				Subtree: pe.Subtree, Detail: pe.Detail, inner: pe}
		}
		return nil, err
	}
	return &InferResult{
		Patch:    &Patch{p: res.Patch},
		Cocci:    res.Cocci,
		Metas:    res.Metas,
		Examples: res.Examples,
		Variant:  res.Variant,
		Notes:    res.Notes,
	}, nil
}

// MinePairs walks a git repository's first-parent history and collects up
// to limit before/after pairs from modified C/C++ files whose
// function-level segmentation shows at least one changed function body —
// input for Infer. Mining is best-effort: unparseable or unusable files
// are skipped, and an error is returned only when nothing minable exists.
func MinePairs(repoDir string, limit int, opts Options) ([]InferPair, error) {
	mined, err := infer.MineGit(repoDir, limit, inferParseOpts(opts))
	if err != nil {
		return nil, err
	}
	out := make([]InferPair, len(mined))
	for i, m := range mined {
		out[i] = InferPair{Name: m.Name, Before: m.Before, After: m.After}
	}
	return out, nil
}

func inferParseOpts(o Options) cparse.Options {
	return cparse.Options{CPlusPlus: o.CPlusPlus, Std: o.Std, CUDA: o.CUDA}
}
