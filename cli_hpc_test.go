package sempatch

// End-to-end tests for the HPC campaign CLIs (gocci-hipify, gocci-acc2omp)
// and gocci --list-campaigns: the campaign path must agree byte-for-byte
// with the --legacy walkers, warm cache runs must report zero parses, and
// --verify must demote unsafe edits with visible warnings.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// cliCUDASrc stays inside the campaign's documented envelope (docs/hpc.md):
// type renames in declaration-statement position, launches in the
// four-argument form — the same shapes the fixture corpora exercise.
const cliCUDASrc = `#include <cuda_runtime.h>

__global__ void dev_scale(int n, float *a) {
	int i = blockIdx.x * blockDim.x + threadIdx.x;
	if (i < n) a[i] = a[i] * 2.0f;
}

int run(int n, float *d_a) {
	cudaStream_t stream;
	cudaError_t err = cudaMalloc((void **)&d_a, n * sizeof(float));
	if (err != cudaSuccess) return 1;
	dev_scale<<<(n + 255) / 256, 256, 0, stream>>>(n, d_a);
	cudaStreamSynchronize(stream);
	cudaFree(d_a);
	return 0;
}
`

const cliACCSrc = `void saxpy(int n, float a, float *x, float *y) {
#pragma acc parallel loop
	for (int i = 0; i < n; ++i)
		y[i] = a * x[i] + y[i];
}
`

func TestCLIListCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci")
	out, err := exec.Command(bin, "--list-campaigns").CombinedOutput()
	if err != nil {
		t.Fatalf("gocci --list-campaigns: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"hipify", "acc2omp", "acc2omp-offload", "hipify-launch.cocci"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}

// TestCLIHipifyCampaignParity pins the campaign CLI byte-identical to
// --legacy, for both the diff output and the rewritten file.
func TestCLIHipifyCampaignParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-hipify")
	file := filepath.Join(t.TempDir(), "app.cu")
	if err := os.WriteFile(file, []byte(cliCUDASrc), 0o644); err != nil {
		t.Fatal(err)
	}
	campaign, err := exec.Command(bin, file).Output()
	if err != nil {
		t.Fatalf("gocci-hipify: %v", err)
	}
	legacy, err := exec.Command(bin, "--legacy", file).Output()
	if err != nil {
		t.Fatalf("gocci-hipify --legacy: %v", err)
	}
	if len(campaign) == 0 || !strings.Contains(string(campaign), "hipMalloc") {
		t.Fatalf("campaign produced no translation:\n%s", campaign)
	}
	if string(campaign) != string(legacy) {
		t.Errorf("campaign and legacy diffs diverge:\n--- campaign\n%s\n--- legacy\n%s", campaign, legacy)
	}

	// --in-place goes through the atomic writer and preserves permissions.
	if err := os.Chmod(file, 0o640); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "--in-place", file).CombinedOutput(); err != nil {
		t.Fatalf("gocci-hipify --in-place: %v\n%s", err, out)
	}
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "hipLaunchKernelGGL") {
		t.Errorf("in-place result not translated:\n%s", b)
	}
	if info, _ := os.Stat(file); info.Mode().Perm() != 0o640 {
		t.Errorf("permissions not preserved: %v", info.Mode().Perm())
	}
}

func TestCLIAcc2ompCampaignParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-acc2omp")
	file := filepath.Join(t.TempDir(), "saxpy.c")
	if err := os.WriteFile(file, []byte(cliACCSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, offload := range []bool{false, true} {
		args := []string{file}
		if offload {
			args = []string{"--offload", file}
		}
		campaign, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("gocci-acc2omp %v: %v", args, err)
		}
		legacy, err := exec.Command(bin, append([]string{"--legacy"}, args...)...).Output()
		if err != nil {
			t.Fatalf("gocci-acc2omp --legacy %v: %v", args, err)
		}
		if !strings.Contains(string(campaign), "#pragma omp") {
			t.Fatalf("campaign produced no translation (offload=%v):\n%s", offload, campaign)
		}
		if string(campaign) != string(legacy) {
			t.Errorf("campaign and legacy diverge (offload=%v):\n--- campaign\n%s\n--- legacy\n%s",
				offload, campaign, legacy)
		}
	}
}

// TestCLIHipifyWarmCacheStats runs a recursive sweep twice with a cache
// dir: the repeat must report parsed: 0 with every member fully cached.
func TestCLIHipifyWarmCacheStats(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-hipify")
	tree := t.TempDir()
	for _, name := range []string{"a.cu", "b.cu"} {
		if err := os.WriteFile(filepath.Join(tree, name), []byte(cliCUDASrc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")
	run := func() string {
		cmd := exec.Command(bin, "-r", "--stats", "--cache-dir", cacheDir, tree)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("gocci-hipify -r: %v\n%s", err, out)
		}
		return string(out)
	}
	cold := run()
	if !strings.Contains(cold, "campaign hipify") || strings.Contains(cold, "parsed: 0") {
		t.Fatalf("cold run stats unexpected:\n%s", cold)
	}
	warm := run()
	if !strings.Contains(warm, "parsed: 0") {
		t.Errorf("warm repeat sweep should parse nothing:\n%s", warm)
	}
	if !strings.Contains(warm, "2 cached") {
		t.Errorf("warm sweep should replay both files per member:\n%s", warm)
	}
}

// TestCLIHipifyVerifyDemotes seeds the capture hazard end to end: the CLI
// must print the verifier warning, report the demotion, and leave the file
// unchanged.
func TestCLIHipifyVerifyDemotes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTool(t, "gocci-hipify")
	src := "int f(int n) {\n\tint hipMalloc = 0;\n\tcudaMalloc(&hipMalloc, n);\n\treturn hipMalloc;\n}\n"
	file := filepath.Join(t.TempDir(), "seed.cu")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "--verify", "--in-place", "--stats", file).CombinedOutput()
	if err != nil {
		t.Fatalf("gocci-hipify --verify: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "[capture]") || !strings.Contains(s, "demoted") {
		t.Errorf("verifier finding not surfaced:\n%s", s)
	}
	b, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != src {
		t.Errorf("unsafe edit was written anyway:\n%s", b)
	}
}
