package sempatch

// The benchmark harness regenerates every experiment of the paper's Section
// 3 (L1..L14, one benchmark each) plus the cross-cutting studies S1..S6
// indexed in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The paper reports no absolute numbers (it is a use-case paper); the
// reproduction's claims are about which transformations are expressible and
// how the engine scales, which these benchmarks quantify.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/aossoa"
	"repro/internal/codegen"
	"repro/internal/cparse"
	"repro/internal/diff"
	"repro/internal/hipify"
	"repro/internal/instrument"
	"repro/internal/patchlib"
	"repro/internal/smpl"
)

// benchExperiment runs one patchlib experiment repeatedly.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := patchlib.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	src := e.Input()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.RunOn(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkL1Likwid(b *testing.B)         { benchExperiment(b, "L1") }
func BenchmarkL2DeclareVariant(b *testing.B) { benchExperiment(b, "L2") }
func BenchmarkL3TargetAttr(b *testing.B)     { benchExperiment(b, "L3") }
func BenchmarkL4BloatRemoval(b *testing.B)   { benchExperiment(b, "L4") }
func BenchmarkL5UnrollP0(b *testing.B)       { benchExperiment(b, "L5") }
func BenchmarkL6UnrollP1R1(b *testing.B)     { benchExperiment(b, "L6") }
func BenchmarkL7MultiIndex(b *testing.B)     { benchExperiment(b, "L7") }
func BenchmarkL8HipFuncs(b *testing.B)       { benchExperiment(b, "L8") }
func BenchmarkL9HipTypes(b *testing.B)       { benchExperiment(b, "L9") }
func BenchmarkL10KernelLaunch(b *testing.B)  { benchExperiment(b, "L10") }
func BenchmarkL11Acc2Omp(b *testing.B)       { benchExperiment(b, "L11") }
func BenchmarkL12StlFind(b *testing.B)       { benchExperiment(b, "L12") }
func BenchmarkL13Kokkos(b *testing.B)        { benchExperiment(b, "L13") }
func BenchmarkL14PragmaInject(b *testing.B)  { benchExperiment(b, "L14") }
func BenchmarkAoSSoA(b *testing.B)           { benchExperiment(b, "S6") }

// S1: engine scaling with file size (L1 patch over growing inputs).
func BenchmarkScalingFileSize(b *testing.B) {
	e, _ := patchlib.ByID("L1")
	for _, funcs := range []int{4, 16, 64, 256} {
		src := codegen.OpenMP(codegen.Config{Funcs: funcs, StmtsPerFunc: 2, Seed: 1})
		b.Run(fmt.Sprintf("funcs=%d", funcs), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, _, err := e.RunOn(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// S2: engine scaling with rule count (N independent rename rules).
func BenchmarkScalingRules(b *testing.B) {
	src := codegen.Mixed(codegen.Config{Funcs: 8, StmtsPerFunc: 3, Seed: 2})
	for _, rules := range []int{1, 4, 16, 64} {
		var sb strings.Builder
		for r := 0; r < rules; r++ {
			fmt.Fprintf(&sb, "@r%d@\nexpression list el;\n@@\n- missing_api_%d(el)\n+ replaced_%d(el)\n\n", r, r, r)
		}
		patchText := sb.String()
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			p, err := ParsePatch("scale.cocci", patchText)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewApplier(p, Options{}).Apply(File{Name: "m.c", Src: src}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// S3: AST-level vs text-level CUDA-to-HIP translation (the hipify-perl
// design-point comparison). The text baseline is faster but unsafe; the
// paper's argument is that AST-level matching buys correctness at modest
// cost — the ratio is what this benchmark reports.
func BenchmarkHipifyASTvsText(b *testing.B) {
	src := codegen.CUDA(codegen.Config{Funcs: 16, StmtsPerFunc: 3, Seed: 3})
	b.Run("ast", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, _, err := hipify.Translate("b.cu", src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			hipify.TextHipify(src)
		}
	})
}

// S4: dots matching backends — the path-sensitive CFG engine (default,
// one cached graph per function) vs the legacy syntactic sequence matcher,
// bare and with its per-match CTL post-verification.
func BenchmarkDotsBackend(b *testing.B) {
	patch := `@r@
@@
lock();
... when != forbidden()
unlock();
`
	var sb strings.Builder
	for f := 0; f < 24; f++ {
		fmt.Fprintf(&sb, "void crit_%d(int x){\n\tlock();\n\twork_%d(x);\n\tif (x) other(x);\n\tunlock();\n}\n", f, f)
	}
	src := sb.String()
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"cfg", Options{}},
		{"sequence", Options{SeqDots: true}},
		{"sequence+ctl", Options{SeqDots: true, UseCTL: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := ParsePatch("dots.cocci", patch)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewApplier(p, mode.opts).Apply(File{Name: "c.c", Src: src}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// S5: parser throughput on each workload shape.
func BenchmarkParserThroughput(b *testing.B) {
	for _, shape := range []string{"openmp", "cuda", "aos", "mixed"} {
		src := codegen.Shapes[shape](codegen.Config{Funcs: 64, StmtsPerFunc: 4, Seed: 4})
		b.Run(shape, func(b *testing.B) {
			opts := cparse.Options{CPlusPlus: true, CUDA: true}
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := cparse.Parse("p.c", src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Patch-parsing cost: every experiment's .cocci text.
func BenchmarkPatchParse(b *testing.B) {
	exps := patchlib.Experiments()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := exps[i%len(exps)]
		if _, err := smpl.ParsePatch(e.ID, e.Patch); err != nil {
			b.Fatal(err)
		}
	}
}

// Unified-diff generation on a realistic transformation output.
func BenchmarkDiff(b *testing.B) {
	e, _ := patchlib.ByID("L1")
	src := codegen.OpenMP(codegen.Config{Funcs: 32, StmtsPerFunc: 2, Seed: 5})
	_, out, err := e.RunOn(src)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.Unified("a", "b", src, out)
	}
}

// S6 companion: the full AoS-to-SoA conversion pipeline (analysis +
// generated patch + declaration replacement) on growing particle codes.
func BenchmarkAoSSoAFull(b *testing.B) {
	for _, funcs := range []int{2, 8, 32} {
		src := codegen.AoS(codegen.Config{Funcs: funcs, StmtsPerFunc: 4, Seed: 10})
		b.Run(fmt.Sprintf("funcs=%d", funcs), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, _, err := aossoa.Transform(src, "particle", "P"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Transitory instrumentation roundtrip: insert markers, then remove them
// (L1 extended to the paper's revert workflow), per marker API.
func BenchmarkInstrumentRoundtrip(b *testing.B) {
	src := codegen.OpenMP(codegen.Config{Funcs: 8, StmtsPerFunc: 2, Seed: 12})
	for _, name := range []string{"likwid", "scorep", "caliper"} {
		api := instrument.APIs[name]
		ins, err := instrument.InsertPatch(api, instrument.Selector{})
		if err != nil {
			b.Fatal(err)
		}
		rem, err := instrument.RemovePatch(api, instrument.Selector{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			pi, err := ParsePatch("i.cocci", ins)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := ParsePatch("r.cocci", rem)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(src)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r1, err := NewApplier(pi, Options{}).Apply(File{Name: "a.c", Src: src})
				if err != nil {
					b.Fatal(err)
				}
				r2, err := NewApplier(pr, Options{}).Apply(File{Name: "a.c", Src: r1.Outputs["a.c"]})
				if err != nil {
					b.Fatal(err)
				}
				if r2.Outputs["a.c"] != src {
					b.Fatal("roundtrip broke identity")
				}
			}
		})
	}
}

// Batch application: one patch across a many-file corpus, the paper's
// whole-codebase scenario (e.g. acc2omp over a full OpenACC application).
// workers=1 is the sequential baseline the parallel speedup is measured
// against; the corpus is large enough that the pool's compile-once +
// per-worker-engine costs amortise.
func BenchmarkBatchApply(b *testing.B) {
	e, ok := patchlib.ByID("L1")
	if !ok {
		b.Fatal("experiment L1 missing")
	}
	p, err := ParsePatch("batch.cocci", e.Patch)
	if err != nil {
		b.Fatal(err)
	}
	const nfiles = 48
	files := make([]File, nfiles)
	var total int64
	for i := range files {
		src := codegen.OpenMP(codegen.Config{Funcs: 8 + i%5, StmtsPerFunc: 3, Seed: int64(i + 1)})
		files[i] = File{Name: fmt.Sprintf("src%02d.c", i), Src: src}
		total += int64(len(src))
	}
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ba := NewBatchApplier(p, Options{Workers: w})
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := ba.ApplyAllFunc(files, nil)
				if err != nil {
					b.Fatal(err)
				}
				if st.Changed != nfiles || st.Errors != 0 {
					b.Fatalf("stats = %+v, want %d files changed", st, nfiles)
				}
			}
		})
	}
}

// Resident daemon vs cold batch: the same 48-file corpus and L1 patch as
// BenchmarkBatchApply, but served from a warm sempatch.Session — compiled
// patterns, content hashes, word sets, parse trees, and results all
// resident. The warm sweep replays every outcome from the in-memory cache
// (zero parses; the changed files are re-read only to recompute diffs), so
// the warm-sweep/BatchApply ratio is the price a cold process pays per
// run; docs/serve.md records it. warm-apply is the single-file request
// path an editor integration would hit.
func BenchmarkServeApply(b *testing.B) {
	e, ok := patchlib.ByID("L1")
	if !ok {
		b.Fatal("experiment L1 missing")
	}
	p, err := ParsePatch("batch.cocci", e.Patch)
	if err != nil {
		b.Fatal(err)
	}
	const nfiles = 48
	root := b.TempDir()
	var total int64
	for i := 0; i < nfiles; i++ {
		src := codegen.OpenMP(codegen.Config{Funcs: 8 + i%5, StmtsPerFunc: 3, Seed: int64(i + 1)})
		if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("src%02d.c", i)), []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
		total += int64(len(src))
	}
	counts := []int{1, runtime.NumCPU()}
	seen := map[int]bool{}
	for _, w := range counts {
		if seen[w] {
			continue
		}
		seen[w] = true
		server := NewServer(Options{Workers: w})
		sess, err := server.AddSession(SessionConfig{
			ID:      fmt.Sprintf("bench%d", w),
			Root:    root,
			Patches: []*Patch{p},
			Options: Options{Workers: w},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Run(nil); err != nil { // warm the session
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("warm-sweep/workers=%d", w), func(b *testing.B) {
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := sess.Run(nil)
				if err != nil {
					b.Fatal(err)
				}
				if st.Changed != nfiles || st.Parsed != 0 {
					b.Fatalf("warm sweep: %+v", st)
				}
			}
		})
		server.Close()
	}

	server := NewServer(Options{Workers: 1})
	sess, err := server.AddSession(SessionConfig{
		ID: "bench-apply", Root: root, Patches: []*Patch{p}, Options: Options{Workers: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer server.Close()
	if _, err := sess.ApplyPath("src00.c"); err != nil {
		b.Fatal(err)
	}
	b.Run("warm-apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fr, err := sess.ApplyPath("src00.c")
			if err != nil {
				b.Fatal(err)
			}
			if !fr.Changed() {
				b.Fatal("apply did not change the file")
			}
		}
	})
}

// Per-stage cost of a warm resident sweep, for scripts/bench_serve.sh:
// the same corpus and patch as BenchmarkServeApply, reporting each
// pipeline stage's self-time (from the sweep's internal trace) as a
// custom "<stage>-ns/op" metric alongside the usual ns/op. The stage
// vocabulary is docs/observability.md's.
func BenchmarkServeStageBreakdown(b *testing.B) {
	e, ok := patchlib.ByID("L1")
	if !ok {
		b.Fatal("experiment L1 missing")
	}
	p, err := ParsePatch("batch.cocci", e.Patch)
	if err != nil {
		b.Fatal(err)
	}
	root := b.TempDir()
	for i := 0; i < 48; i++ {
		src := codegen.OpenMP(codegen.Config{Funcs: 8 + i%5, StmtsPerFunc: 3, Seed: int64(i + 1)})
		if err := os.WriteFile(filepath.Join(root, fmt.Sprintf("src%02d.c", i)), []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	server := NewServer(Options{Workers: 1})
	defer server.Close()
	sess, err := server.AddSession(SessionConfig{
		ID: "bench-stages", Root: root, Patches: []*Patch{p}, Options: Options{Workers: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Run(nil); err != nil { // warm the session
		b.Fatal(err)
	}
	totals := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := sess.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		for stage, sec := range st.StageSeconds {
			totals[stage] += sec
		}
	}
	b.StopTimer()
	for stage, sec := range totals {
		b.ReportMetric(sec*1e9/float64(b.N), stage+"-ns/op")
	}
}

// Prefilter effect: batch apply over a corpus where ~90% of the files
// cannot match the patch, the realistic shape of a whole-codebase run (the
// paper's spatch+glimpse scenario). The prefilter rejects non-candidate
// files from raw bytes without parsing them, so the "on" case should beat
// "off" by a multiple; both must produce identical outputs, which the
// benchmark verifies once up front (TestPrefilterParity covers the tricky
// rule-dependency and virtual-rule cases exhaustively).
func BenchmarkPrefilter(b *testing.B) {
	patch := `@r@
expression list el;
@@
- legacy_halo_exchange(el)
+ halo_exchange_v2(el)
`
	p, err := ParsePatch("prefilter.cocci", patch)
	if err != nil {
		b.Fatal(err)
	}
	const nfiles = 100
	files := make([]File, nfiles)
	var total int64
	matching := 0
	for i := range files {
		src := codegen.Mixed(codegen.Config{Funcs: 6 + i%4, StmtsPerFunc: 3, Seed: int64(i + 1)})
		if i%10 == 0 { // ~10% of the corpus actually calls the legacy API
			src += "\nvoid migrate_me(int n)\n{\n\tlegacy_halo_exchange(n, 0);\n}\n"
			matching++
		}
		files[i] = File{Name: fmt.Sprintf("src%03d.c", i), Src: src}
		total += int64(len(src))
	}

	// Outputs must be byte-identical with the filter on and off.
	outOn := map[string]string{}
	outOff := map[string]string{}
	for _, cfg := range []struct {
		out map[string]string
		opt Options
	}{{outOn, Options{Workers: 1}}, {outOff, Options{Workers: 1, NoPrefilter: true}}} {
		if _, err := NewBatchApplier(p, cfg.opt).ApplyAllFunc(files, func(fr FileResult) error {
			cfg.out[fr.Name] = fr.Output
			return fr.Err
		}); err != nil {
			b.Fatal(err)
		}
	}
	for name, on := range outOn {
		if on != outOff[name] {
			b.Fatalf("%s: prefilter changed the output", name)
		}
	}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"on", Options{Workers: 1}},
		{"off", Options{Workers: 1, NoPrefilter: true}},
	} {
		b.Run("prefilter="+mode.name, func(b *testing.B) {
			ba := NewBatchApplier(p, mode.opts)
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := ba.ApplyAllFunc(files, nil)
				if err != nil {
					b.Fatal(err)
				}
				if st.Changed != matching || st.Errors != 0 {
					b.Fatalf("stats = %+v, want %d changed", st, matching)
				}
			}
		})
	}
}

// Warm-cache effect: the same batch over an unchanged 90%-non-matching
// corpus with the persistent corpus index cold (first-ever run: scan,
// parse, match, and populate the cache) versus warm (every result replays
// from the cache by content hash — no scanning, parsing, or matching).
// Warm runs should beat cold by well over the acceptance floor of 5x; the
// parity of outputs across cold/warm/disabled is pinned by TestCacheParity.
func BenchmarkWarmCache(b *testing.B) {
	patch := `@r@
expression list el;
@@
- legacy_halo_exchange(el)
+ halo_exchange_v2(el)
`
	p, err := ParsePatch("cache.cocci", patch)
	if err != nil {
		b.Fatal(err)
	}
	const nfiles = 100
	files := make([]File, nfiles)
	var total int64
	for i := range files {
		src := codegen.Mixed(codegen.Config{Funcs: 6 + i%4, StmtsPerFunc: 3, Seed: int64(i + 1)})
		if i%10 == 0 { // ~10% of the corpus actually calls the legacy API
			src += "\nvoid migrate_me(int n)\n{\n\tlegacy_halo_exchange(n, 0);\n}\n"
		}
		files[i] = File{Name: fmt.Sprintf("src%03d.c", i), Src: src}
		total += int64(len(src))
	}

	b.Run("cold", func(b *testing.B) {
		// Every iteration starts from an empty cache: the measured cost is
		// scan + parse + match + cache population.
		dirs := make([]string, b.N)
		for i := range dirs {
			dirs[i] = filepath.Join(b.TempDir(), fmt.Sprintf("c%d", i))
		}
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := NewBatchApplier(p, Options{Workers: 1, CacheDir: dirs[i]}).ApplyAllFunc(files, nil)
			if err != nil {
				b.Fatal(err)
			}
			if st.Cached != 0 {
				b.Fatalf("cold run cached %d", st.Cached)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "cache")
		if _, err := NewBatchApplier(p, Options{Workers: 1, CacheDir: dir}).ApplyAllFunc(files, nil); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := NewBatchApplier(p, Options{Workers: 1, CacheDir: dir}).ApplyAllFunc(files, nil)
			if err != nil {
				b.Fatal(err)
			}
			if st.Cached != nfiles {
				b.Fatalf("warm run cached %d of %d", st.Cached, nfiles)
			}
		}
	})
}

// Campaign effect: N patches over one corpus, applied as N separate batch
// runs (each parses every candidate file) versus one campaign sweep (each
// file parsed at most once, the tree shared by all patches). The probes are
// context-only so every file is a candidate for every patch — the
// parse-dominated worst case the campaign exists for.
func BenchmarkCampaign(b *testing.B) {
	const npatches = 4
	patches := make([]*Patch, npatches)
	for i := range patches {
		text := fmt.Sprintf("@probe%d@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n", i)
		p, err := ParsePatch(fmt.Sprintf("p%d.cocci", i), text)
		if err != nil {
			b.Fatal(err)
		}
		patches[i] = p
	}
	const nfiles = 32
	files := make([]File, nfiles)
	var total int64
	for i := range files {
		src := codegen.Mixed(codegen.Config{Funcs: 8, StmtsPerFunc: 3, Seed: int64(i + 1)})
		files[i] = File{Name: fmt.Sprintf("src%02d.c", i), Src: src}
		total += int64(len(src))
	}

	b.Run("sequential-runs", func(b *testing.B) {
		b.SetBytes(total * npatches)
		for i := 0; i < b.N; i++ {
			for _, p := range patches {
				if _, err := NewBatchApplier(p, Options{Workers: 1}).ApplyAllFunc(files, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("campaign", func(b *testing.B) {
		b.SetBytes(total * npatches)
		for i := 0; i < b.N; i++ {
			ca := NewCampaign(patches, Options{Workers: 1})
			if _, err := ca.ApplyAllFunc(files, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Match-only cost (no transformation): a pure-context rule.
func BenchmarkMatchOnly(b *testing.B) {
	patch := "@probe@\ntype T;\nidentifier f;\nparameter list PL;\nstatement list SL;\n@@\nT f (PL) { SL }\n"
	src := codegen.Mixed(codegen.Config{Funcs: 32, StmtsPerFunc: 4, Seed: 6})
	p, err := ParsePatch("probe.cocci", patch)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewApplier(p, Options{}).Apply(File{Name: "m.c", Src: src}); err != nil {
			b.Fatal(err)
		}
	}
}
