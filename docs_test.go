package sempatch

// Docs-check: every fenced `cocci` snippet in the documentation must parse,
// every `c`/`cpp`/`cuda` snippet must parse in the corresponding dialect,
// and every cocci snippet immediately followed by a code snippet is applied
// to it and must match at least once. Every fenced block must carry a
// language tag, and every relative link between the documentation files
// must resolve. Documentation that drifts from the implementation fails
// the build.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cparse"
)

// docFiles is the complete documentation set under test; TestDocsComplete
// fails when a file appears in docs/ without being listed here.
var docFiles = []string{
	"README.md",
	"docs/smpl.md",
	"docs/batch.md",
	"docs/cli.md",
	"docs/check.md",
	"docs/architecture.md",
	"docs/serve.md",
	"docs/hpc.md",
	"docs/infer.md",
	"docs/observability.md",
}

type snippet struct {
	lang string
	text string
	line int // 1-based line of the opening fence
}

func extractSnippets(t *testing.T, path string) []snippet {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var snips []snippet
	var cur *snippet
	var body []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if !strings.HasPrefix(text, "```") {
			if cur != nil {
				body = append(body, text)
			}
			continue
		}
		if cur != nil {
			cur.text = strings.Join(body, "\n") + "\n"
			snips = append(snips, *cur)
			cur, body = nil, nil
			continue
		}
		cur = &snippet{lang: strings.TrimSpace(strings.TrimPrefix(text, "```")), line: line}
		if cur.lang == "" {
			t.Errorf("%s:%d: fenced block without a language tag (use ```text for plain blocks)", path, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cur != nil {
		t.Fatalf("%s:%d: unterminated code fence", path, cur.line)
	}
	return snips
}

// dialect maps a fence language to engine and parser options. The docs
// promise cpp snippets are checked in C++23 mode (docs/smpl.md).
func dialect(lang string) (Options, cparse.Options, bool) {
	switch lang {
	case "c":
		return Options{}, cparse.Options{}, true
	case "cpp":
		return Options{CPlusPlus: true, Std: 23}, cparse.Options{CPlusPlus: true, Std: 23}, true
	case "cuda":
		return Options{CPlusPlus: true, CUDA: true}, cparse.Options{CPlusPlus: true, CUDA: true}, true
	}
	return Options{}, cparse.Options{}, false
}

// TestDocsComplete pins docFiles to the actual documentation set, so a new
// docs/*.md file cannot ship without entering the snippet and link checks.
func TestDocsComplete(t *testing.T) {
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, d := range docFiles {
		listed[d] = true
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") && !listed["docs/"+e.Name()] {
			t.Errorf("docs/%s exists but is not in docFiles — add it so its snippets and links are checked", e.Name())
		}
	}
}

// mdLink matches inline markdown links; images and autolinks are out of
// scope (the docs use neither).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinks verifies every relative cross-file link in the docs
// resolves to an existing file (anchors are stripped; external URLs are
// skipped — CI has no business depending on the network).
func TestDocsLinks(t *testing.T) {
	for _, doc := range docFiles {
		b, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s): %v", doc, m[1], resolved, err)
			}
		}
	}
}

func TestDocsSnippets(t *testing.T) {
	for _, doc := range docFiles {
		t.Run(doc, func(t *testing.T) {
			snips := extractSnippets(t, doc)
			if len(snips) == 0 {
				t.Fatalf("no fenced snippets in %s", doc)
			}
			var lastPatch *Patch // pending cocci block awaiting its code pair
			var lastLine int
			parsed, applied := 0, 0
			for _, s := range snips {
				switch {
				case s.lang == "cocci":
					p, err := ParsePatch(doc, s.text)
					if err != nil {
						t.Errorf("%s:%d: cocci snippet does not parse: %v", doc, s.line, err)
						lastPatch = nil
						continue
					}
					lastPatch, lastLine = p, s.line
					parsed++
				default:
					opts, popts, isCode := dialect(s.lang)
					if !isCode {
						// go/sh/diagram blocks are out of scope here; the
						// README's Go code is pinned by Example functions.
						lastPatch = nil
						continue
					}
					if _, err := cparse.Parse(doc, s.text, popts); err != nil {
						t.Errorf("%s:%d: %s snippet does not parse: %v", doc, s.line, s.lang, err)
						lastPatch = nil
						continue
					}
					if lastPatch == nil {
						continue
					}
					// Apply the preceding patch to this code. Declared
					// virtuals are all defined, mirroring `gocci -D`.
					opts.Defines = lastPatch.Virtuals()
					res, err := NewApplier(lastPatch, opts).
						Apply(File{Name: "snippet." + s.lang, Src: s.text})
					if err != nil {
						t.Errorf("%s:%d: applying the cocci snippet from line %d failed: %v",
							doc, s.line, lastLine, err)
					} else {
						total := 0
						for _, n := range res.MatchCount {
							total += n
						}
						if total == 0 {
							t.Errorf("%s:%d: the cocci snippet from line %d does not match its example code",
								doc, s.line, lastLine)
						}
					}
					applied++
					lastPatch = nil
				}
			}
			t.Logf("%s: %d snippets, %d cocci parsed, %d pairs applied", doc, len(snips), parsed, applied)
		})
	}
}
