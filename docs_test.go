package sempatch

// Docs-check: every fenced `cocci` snippet in the documentation must parse,
// every `c`/`cpp`/`cuda` snippet must parse in the corresponding dialect,
// and every cocci snippet immediately followed by a code snippet is applied
// to it and must match at least once. Documentation that drifts from the
// implementation fails the build.

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"repro/internal/cparse"
)

type snippet struct {
	lang string
	text string
	line int // 1-based line of the opening fence
}

func extractSnippets(t *testing.T, path string) []snippet {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var snips []snippet
	var cur *snippet
	var body []string
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if !strings.HasPrefix(text, "```") {
			if cur != nil {
				body = append(body, text)
			}
			continue
		}
		if cur != nil {
			cur.text = strings.Join(body, "\n") + "\n"
			snips = append(snips, *cur)
			cur, body = nil, nil
			continue
		}
		cur = &snippet{lang: strings.TrimSpace(strings.TrimPrefix(text, "```")), line: line}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cur != nil {
		t.Fatalf("%s:%d: unterminated code fence", path, cur.line)
	}
	return snips
}

// dialect maps a fence language to engine and parser options. The docs
// promise cpp snippets are checked in C++23 mode (docs/smpl.md).
func dialect(lang string) (Options, cparse.Options, bool) {
	switch lang {
	case "c":
		return Options{}, cparse.Options{}, true
	case "cpp":
		return Options{CPlusPlus: true, Std: 23}, cparse.Options{CPlusPlus: true, Std: 23}, true
	case "cuda":
		return Options{CPlusPlus: true, CUDA: true}, cparse.Options{CPlusPlus: true, CUDA: true}, true
	}
	return Options{}, cparse.Options{}, false
}

func TestDocsSnippets(t *testing.T) {
	for _, doc := range []string{"README.md", "docs/smpl.md", "docs/batch.md"} {
		t.Run(doc, func(t *testing.T) {
			snips := extractSnippets(t, doc)
			if len(snips) == 0 {
				t.Fatalf("no fenced snippets in %s", doc)
			}
			var lastPatch *Patch // pending cocci block awaiting its code pair
			var lastLine int
			parsed, applied := 0, 0
			for _, s := range snips {
				switch {
				case s.lang == "cocci":
					p, err := ParsePatch(doc, s.text)
					if err != nil {
						t.Errorf("%s:%d: cocci snippet does not parse: %v", doc, s.line, err)
						lastPatch = nil
						continue
					}
					lastPatch, lastLine = p, s.line
					parsed++
				default:
					opts, popts, isCode := dialect(s.lang)
					if !isCode {
						// go/sh/diagram blocks are out of scope here; the
						// README's Go code is pinned by Example functions.
						lastPatch = nil
						continue
					}
					if _, err := cparse.Parse(doc, s.text, popts); err != nil {
						t.Errorf("%s:%d: %s snippet does not parse: %v", doc, s.line, s.lang, err)
						lastPatch = nil
						continue
					}
					if lastPatch == nil {
						continue
					}
					// Apply the preceding patch to this code. Declared
					// virtuals are all defined, mirroring `gocci -D`.
					opts.Defines = lastPatch.Virtuals()
					res, err := NewApplier(lastPatch, opts).
						Apply(File{Name: "snippet." + s.lang, Src: s.text})
					if err != nil {
						t.Errorf("%s:%d: applying the cocci snippet from line %d failed: %v",
							doc, s.line, lastLine, err)
					} else {
						total := 0
						for _, n := range res.MatchCount {
							total += n
						}
						if total == 0 {
							t.Errorf("%s:%d: the cocci snippet from line %d does not match its example code",
								doc, s.line, lastLine)
						}
					}
					applied++
					lastPatch = nil
				}
			}
			t.Logf("%s: %d snippets, %d cocci parsed, %d pairs applied", doc, len(snips), parsed, applied)
		})
	}
}
