// Command gocci-acc2omp translates OpenACC directives to OpenMP. The
// default mode runs the shipped "acc2omp" semantic-patch campaign (the
// paper's pragmainfo use case, with the directive translator as a script
// rule — see internal/hpc) through the engine's batch runner, inheriting
// the -j worker pool, recursive tree scanning, the prefilter, and the
// persistent result cache; --verify adds the post-transform safety
// checker, including the pragma round-trip test. --offload targets OpenMP
// device offloading instead of host threading. --legacy (alias: --line)
// selects the v0 line-oriented walker the paper contrasts the engine with.
//
// Usage:
//
//	gocci-acc2omp [--legacy] [--offload] [--in-place] [--stats] [--verify]
//	              [-j N] [-r] [--cache-dir DIR] file.c ...
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/accomp"
	"repro/internal/buildinfo"
	"repro/internal/hpc"
	"repro/internal/hpccli"
)

func main() {
	showVersion := buildinfo.Setup("gocci-acc2omp")
	legacy := flag.Bool("legacy", false, "use the v0 line-oriented walker instead of the shipped campaign")
	lineMode := flag.Bool("line", false, "alias for --legacy")
	offload := flag.Bool("offload", false, "target OpenMP device offloading instead of host threading")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	stats := flag.Bool("stats", false, "print translation statistics")
	verify := flag.Bool("verify", false, "run the post-transform safety checker; unsafe edits are demoted to warnings")
	recurse := flag.Bool("r", false, "treat arguments as directories; translate all C/C++ sources below them")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for the campaign batch runner")
	cacheDir := flag.String("cache-dir", "", "persistent corpus-index directory; re-runs over unchanged files replay cached results")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON profile of the campaign run to this file")
	profile := flag.Bool("profile", false, "print an aggregate per-stage/per-rule profile to stderr")
	flag.Parse()
	buildinfo.HandleVersion("gocci-acc2omp", showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-acc2omp [--legacy] [--offload] [--in-place] [--stats] [--verify] [-j N] [-r] [--cache-dir DIR] file.c ...")
		os.Exit(2)
	}
	mode, campaign := accomp.Host, "acc2omp"
	if *offload {
		mode, campaign = accomp.Offload, "acc2omp-offload"
	}

	spec := hpccli.Spec{
		Tool: "gocci-acc2omp", InPlace: *inPlace, Stats: *stats, Verify: *verify,
		Recurse: *recurse, Workers: *workers, CacheDir: *cacheDir,
		TracePath: *tracePath, Profile: *profile, Args: flag.Args(),
	}
	if *legacy || *lineMode {
		spec.Legacy = func(path, src string) (string, error) {
			out, warns, err := accomp.TranslateSource(src, mode)
			if err != nil {
				return "", err
			}
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "warning: %s: %s\n", w.What, w.Why)
			}
			return out, nil
		}
	} else {
		spec.Campaign, _ = hpc.ByName(campaign)
	}
	os.Exit(hpccli.Run(spec))
}
