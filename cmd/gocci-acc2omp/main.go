// Command gocci-acc2omp translates OpenACC directives to OpenMP. The default
// path goes through the semantic patch engine (the paper's pragmainfo use
// case, with the directive translator as the script rule); --line switches
// to the plain line-oriented rewriting the paper contrasts it with.
//
// Usage:
//
//	gocci-acc2omp [--line] [--offload] [--in-place] file.c ...
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accomp"
	"repro/internal/buildinfo"
	"repro/internal/diff"
	"repro/internal/patchlib"
)

func main() {
	showVersion := buildinfo.Setup("gocci-acc2omp")
	lineMode := flag.Bool("line", false, "line-oriented rewriting instead of the semantic patch engine")
	offload := flag.Bool("offload", false, "target OpenMP device offloading instead of host threading")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	flag.Parse()
	buildinfo.HandleVersion("gocci-acc2omp", showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-acc2omp [--line] [--offload] [--in-place] file.c ...")
		os.Exit(2)
	}
	mode := accomp.Host
	if *offload {
		mode = accomp.Offload
	}

	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		src := string(b)
		var out string
		var warns []accomp.Warning
		if *lineMode {
			out, warns, err = accomp.TranslateSource(src, mode)
			if err != nil {
				fatal(err)
			}
		} else {
			exp, _ := patchlib.ByID("L11")
			_, out, err = exp.RunOn(src)
			if err != nil {
				fatal(err)
			}
		}
		for _, w := range warns {
			fmt.Fprintf(os.Stderr, "warning: %s: %s\n", w.What, w.Why)
		}
		if *inPlace {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(diff.Unified("a/"+path, "b/"+path, src, out))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci-acc2omp:", err)
	os.Exit(1)
}
