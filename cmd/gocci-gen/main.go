// Command gocci-gen emits synthetic C/C++ workloads with the code shapes the
// semantic patch experiments target (OpenMP blocks, unrolled loops, CUDA
// calls, AoS accesses, ...). Benchmarks and examples use it to fabricate
// codebases of controllable size.
//
// Usage:
//
//	gocci-gen --shape cuda --funcs 20 --stmts 5 [--seed 42] [-o out.cu]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/buildinfo"
	"repro/internal/codegen"
)

func main() {
	showVersion := buildinfo.Setup("gocci-gen")
	shape := flag.String("shape", "mixed", "workload shape (see --list)")
	funcs := flag.Int("funcs", 8, "number of functions")
	stmts := flag.Int("stmts", 4, "statements per function")
	seed := flag.Int64("seed", 20250326, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available shapes")
	flag.Parse()
	buildinfo.HandleVersion("gocci-gen", showVersion)

	if *list {
		names := make([]string, 0, len(codegen.Shapes))
		for n := range codegen.Shapes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	gen, ok := codegen.Shapes[*shape]
	if !ok {
		fmt.Fprintf(os.Stderr, "gocci-gen: unknown shape %q (try --list)\n", *shape)
		os.Exit(2)
	}
	src := gen(codegen.Config{Funcs: *funcs, StmtsPerFunc: *stmts, Seed: *seed})
	if *out == "" {
		fmt.Print(src)
		return
	}
	if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "gocci-gen:", err)
		os.Exit(1)
	}
}
