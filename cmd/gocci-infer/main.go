// Command gocci-infer derives a semantic patch from before/after examples —
// patch inference by demonstration. Examples are given as file pairs on the
// command line or mined from a git repository's history at function
// granularity. The inferred .cocci is verified in-process before it is
// printed: the engine compiles it and replays every "before" file, demanding
// byte-identity with its "after"; the most abstract patch surviving that
// round-trip oracle wins.
//
// Usage:
//
//	gocci-infer [flags] before.c after.c [before2.c after2.c ...]
//	gocci-infer [flags] --git path/to/repo
//
// Flags:
//
//	-o file      write the inferred .cocci to file (default stdout)
//	--rule name  name of the emitted rule (default "inferred")
//	--git dir    mine before/after pairs from the repository's history
//	--git-limit  maximum pairs to mine (default 16)
//	--cxx N      C++ standard (0 = C)
//	--cuda       enable CUDA kernel-launch tokens
//	-v           report the surviving variant, examples, and rejected
//	             variants on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/infer"
)

func main() {
	showVersion := buildinfo.Setup("gocci-infer")
	out := flag.String("o", "", "write the inferred .cocci here (default stdout)")
	rule := flag.String("rule", "", `name of the emitted rule (default "inferred")`)
	gitRepo := flag.String("git", "", "mine before/after pairs from this git repository")
	gitLimit := flag.Int("git-limit", 16, "maximum pairs to mine from history")
	cxx := flag.Int("cxx", 0, "C++ standard (0 = C)")
	cuda := flag.Bool("cuda", false, "enable CUDA kernel-launch tokens")
	verbose := flag.Bool("v", false, "report variant, examples, and rejected variants on stderr")
	flag.Parse()
	buildinfo.HandleVersion("gocci-infer", showVersion)

	popts := cparse.Options{CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda}
	opts := infer.Options{
		RuleName: *rule,
		Parse:    popts,
		Engine:   core.Options{CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda},
	}

	var pairs []infer.Pair
	switch {
	case *gitRepo != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "gocci-infer: --git and explicit file pairs are mutually exclusive")
			os.Exit(2)
		}
		mined, err := infer.MineGit(*gitRepo, *gitLimit, popts)
		if err != nil {
			fatal(err)
		}
		for _, m := range mined {
			if *verbose {
				fmt.Fprintf(os.Stderr, "gocci-infer: mined %s (functions: %v)\n", m.Name, m.Changed)
			}
			pairs = append(pairs, m.Pair)
		}
	case flag.NArg() == 0 || flag.NArg()%2 != 0:
		fmt.Fprintln(os.Stderr, "usage: gocci-infer [flags] before.c after.c [before2.c after2.c ...]")
		fmt.Fprintln(os.Stderr, "       gocci-infer [flags] --git path/to/repo")
		os.Exit(2)
	default:
		for i := 0; i < flag.NArg(); i += 2 {
			bPath, aPath := flag.Arg(i), flag.Arg(i+1)
			before, err := os.ReadFile(bPath)
			if err != nil {
				fatal(err)
			}
			after, err := os.ReadFile(aPath)
			if err != nil {
				fatal(err)
			}
			pairs = append(pairs, infer.Pair{
				Name:   filepath.Base(bPath) + ":" + filepath.Base(aPath),
				Before: string(before),
				After:  string(after),
			})
		}
	}

	res, err := infer.Infer(pairs, opts)
	if err != nil {
		if pe, ok := err.(*infer.PairError); ok {
			fmt.Fprintf(os.Stderr, "gocci-infer: %v\n", pe)
			os.Exit(1)
		}
		fatal(err)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "gocci-infer: variant %s verified against %d pair(s), inferred from %d example(s)\n",
			res.Variant, len(pairs), len(res.Examples))
		for _, ex := range res.Examples {
			fmt.Fprintf(os.Stderr, "gocci-infer:   example %s\n", ex)
		}
		for _, n := range res.Notes {
			fmt.Fprintf(os.Stderr, "gocci-infer:   note: %s\n", n)
		}
	}

	if *out == "" {
		fmt.Print(res.Cocci)
		return
	}
	if err := os.WriteFile(*out, []byte(res.Cocci), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci-infer:", err)
	os.Exit(1)
}
