// Command gocci-parse inspects how the front end sees a C/C++ file: the
// token stream, the syntax tree, per-function control-flow graphs (Graphviz
// dot), or summary statistics. It is the debugging companion to gocci, for
// understanding why a semantic patch does or does not match.
//
// Usage:
//
//	gocci-parse --dump ast|cfg|tokens|stats [--cxx 17] [--cuda] file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/ctoken"
)

func main() {
	showVersion := buildinfo.Setup("gocci-parse")
	dump := flag.String("dump", "ast", "what to print: ast, cfg, tokens, stats")
	cxx := flag.Int("cxx", 0, "C++ standard (0 = C)")
	cuda := flag.Bool("cuda", false, "enable CUDA kernel-launch tokens")
	flag.Parse()
	buildinfo.HandleVersion("gocci-parse", showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-parse --dump ast|cfg|tokens|stats file.c ...")
		os.Exit(2)
	}

	opts := cparse.Options{CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda}
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		src := string(b)
		switch *dump {
		case "tokens":
			lf, err := ctoken.Lex(path, src, ctoken.Options{CUDAChevrons: *cuda})
			if err != nil {
				fatal(err)
			}
			for i, t := range lf.Tokens {
				fmt.Printf("%4d %-10s %-8s %q\n", i, t.Pos, t.Kind, t.Text)
			}
		case "ast":
			f, err := cparse.Parse(path, src, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Print(cast.Dump(f))
		case "cfg":
			f, err := cparse.Parse(path, src, opts)
			if err != nil {
				fatal(err)
			}
			for _, fd := range f.Funcs() {
				fmt.Printf("// function %s\n", fd.Name.Name)
				fmt.Print(cfg.Build(fd).Dot(f))
			}
		case "stats":
			f, err := cparse.Parse(path, src, opts)
			if err != nil {
				fatal(err)
			}
			st := cast.Summarize(f)
			fmt.Printf("%s: %d decls, %d funcs, %d stmts, %d exprs, %d pragmas, %d includes, depth %d\n",
				path, st.Decls, st.Funcs, st.Stmts, st.Exprs, st.Pragmas, st.Includes, st.MaxDepth)
		default:
			fmt.Fprintf(os.Stderr, "gocci-parse: unknown dump mode %q\n", *dump)
			os.Exit(2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci-parse:", err)
	os.Exit(1)
}
