// `gocci vet` lints semantic patches without running them: unused and
// unbindable metavariables, rules unreachable through their depends-on
// chains, shadowed disjunction branches, and rules the batch prefilter can
// never prune. Exit codes follow the check-mode convention: 0 clean, 1 when
// any patch fails to parse or has issues, 2 on usage errors.

package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/smpl"
)

// runVet implements the vet subcommand over args (everything after "vet").
func runVet(args []string) int {
	fs := flag.NewFlagSet("gocci vet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: gocci vet patch.cocci [more.cocci ...]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args) // ExitOnError: a bad flag exits 2 inside Parse
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	exit := 0
	total := 0
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gocci: vet:", err)
			exit = 1
			continue
		}
		p, err := smpl.ParsePatch(path, string(b))
		if err != nil {
			fmt.Fprintln(os.Stderr, "gocci: vet:", err)
			exit = 1
			continue
		}
		issues := lint.Check(p)
		for _, is := range issues {
			fmt.Println(is.String())
		}
		total += len(issues)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "gocci: vet: %d issues\n", total)
		exit = 1
	}
	return exit
}
