// Check mode: `gocci --check` runs the patch set match-only and reports
// findings instead of diffs. Formats: compiler-style text (default), NDJSON
// (byte-identical to the gocci-serve stream), or SARIF 2.1.0 for code
// scanning upload. `--baseline-write` records the current findings keyed by
// function identity; a later `--baseline` run suppresses exactly those, so
// the gate only fires on new findings even as unrelated code moves around.

package main

import (
	"fmt"
	"os"

	sempatch "repro"
	"repro/internal/analysis"
	"repro/internal/buildinfo"
)

// checkConfig carries the --check flag family after validation.
type checkConfig struct {
	enabled       bool
	format        string // text | json | sarif
	baselinePath  string
	baselineWrite bool
	failOn        string // error | warning | info
}

// validate rejects unusable flag combinations; any error is a usage error
// (exit 2).
func (c *checkConfig) validate(inPlace bool) error {
	if !c.enabled {
		if c.baselinePath != "" || c.baselineWrite {
			return fmt.Errorf("--baseline requires --check")
		}
		return nil
	}
	if inPlace {
		return fmt.Errorf("--check is match-only; it cannot be combined with --in-place")
	}
	switch c.format {
	case "text", "json", "sarif":
	default:
		return fmt.Errorf("--format must be text, json, or sarif (got %q)", c.format)
	}
	if analysis.Rank(c.failOn) == 0 {
		return fmt.Errorf("--fail-on must be error, warning, or info (got %q)", c.failOn)
	}
	if c.baselineWrite && c.baselinePath == "" {
		return fmt.Errorf("--baseline-write requires --baseline PATH")
	}
	return nil
}

// warnIfNoChecks tells the user when --check ran a patch set with no check
// rules: the run is legal (zero findings) but almost certainly a mistake.
func (c *checkConfig) warnIfNoChecks(patches []*sempatch.Patch) {
	for _, p := range patches {
		if p.HasChecks() {
			return
		}
	}
	fmt.Fprintln(os.Stderr, "gocci: warning: --check with no check rules in the patch set; nothing can be reported")
}

// finishCheck reports the run's findings and returns the process exit code:
// 1 when any finding at or above --fail-on survives the baseline, 0 when
// clean. Processing errors already forced exit 1 via g.hadError.
func (g *gocci) finishCheck(cfg checkConfig) int {
	findings := g.findings
	analysis.Sort(findings)

	if cfg.baselineWrite {
		bl := analysis.NewBaseline(findings)
		if err := bl.Write(cfg.baselinePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gocci: baseline: %d findings recorded to %s\n", len(findings), cfg.baselinePath)
		if g.hadError {
			return 1
		}
		return 0
	}

	suppressed := 0
	if cfg.baselinePath != "" {
		bl, err := analysis.LoadBaseline(cfg.baselinePath)
		if err != nil {
			fatal(err)
		}
		kept := bl.Filter(findings)
		suppressed = len(findings) - len(kept)
		findings = kept
	}

	switch cfg.format {
	case "json":
		if err := analysis.WriteNDJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	case "sarif":
		if err := analysis.WriteSarif(os.Stdout, buildinfo.Version(), findings); err != nil {
			fatal(err)
		}
	default:
		if err := analysis.WriteText(os.Stdout, findings); err != nil {
			fatal(err)
		}
	}

	// The parsed count is the warm-cache signal: a repeat sweep over an
	// unchanged tree replays every finding and reports "parsed: 0".
	fmt.Fprintf(os.Stderr, "gocci: parsed: %d\n", g.st.Parsed+g.cst.Parsed)
	by := analysis.CountBySeverity(findings)
	fmt.Fprintf(os.Stderr, "gocci: %d findings (%d error, %d warning, %d info)",
		len(findings), by[analysis.SeverityError], by[analysis.SeverityWarning], by[analysis.SeverityInfo])
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, ", %d suppressed by baseline", suppressed)
	}
	fmt.Fprintln(os.Stderr)

	if g.hadError {
		return 1
	}
	if len(findings) > 0 && analysis.MaxRank(findings) >= analysis.Rank(cfg.failOn) {
		return 1
	}
	return 0
}
