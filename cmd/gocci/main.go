// Command gocci applies a semantic patch to C/C++ source files, printing a
// unified diff by default (like spatch) or rewriting files in place.
//
// Usage:
//
//	gocci --sp-file patch.cocci [-cxx STD] [--cuda] [--use-ctl]
//	      [--in-place] file.c [file2.c ...]
//	gocci -j 8 -r --stats path/to/tree patch.cocci
//
// With an explicit file list, one engine processes all files together and
// metavariable bindings flow across files between rules. In recursive mode
// (-r) the positional arguments are directories, scanned for C/C++/CUDA
// sources, and the patch is applied to each file independently with a -j
// worker pool; files are read lazily inside the pool, a required-atom
// prefilter skips files the patch provably cannot touch (disable with
// --no-prefilter), and diffs stream in deterministic path order. The patch
// may be named either with --sp-file or as a positional .cocci argument.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	sempatch "repro"
)

// srcExts are the file suffixes collected in recursive mode.
var srcExts = map[string]bool{
	".c": true, ".h": true,
	".cc": true, ".cpp": true, ".cxx": true,
	".hh": true, ".hpp": true, ".hxx": true,
	".cu": true, ".cuh": true,
}

func main() {
	spFile := flag.String("sp-file", "", "semantic patch file (.cocci); may also be given as a positional argument")
	cxx := flag.Int("cxx", 0, "enable C++ mode with the given standard (11, 17, 23); 0 = C")
	cuda := flag.Bool("cuda", false, "enable CUDA <<< >>> kernel launches")
	useCTL := flag.Bool("use-ctl", false, "verify dots constraints with the CTL/CFG backend")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	quiet := flag.Bool("quiet", false, "suppress diffs; only report matched rules")
	recurse := flag.Bool("r", false, "treat arguments as directories; apply to all C/C++ sources below them")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for recursive batch application")
	stats := flag.Bool("stats", false, "print a files/matches/changes summary to stderr")
	noPrefilter := flag.Bool("no-prefilter", false, "parse every file in recursive mode, even those the patch provably cannot touch")
	var defines defineList
	flag.Var(&defines, "D", "define a virtual dependency name (repeatable)")
	flag.Parse()

	args := flag.Args()
	// Positional patch: the first argument ending in .cocci, when --sp-file
	// is absent, so `gocci -j 8 -r dir patch.cocci` works as expected.
	if *spFile == "" {
		for i, a := range args {
			if strings.HasSuffix(a, ".cocci") {
				*spFile = a
				args = append(args[:i:i], args[i+1:]...)
				break
			}
		}
	}
	if *spFile == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci --sp-file patch.cocci [options] file.c ...")
		fmt.Fprintln(os.Stderr, "       gocci [-j N] -r [options] dir ... patch.cocci")
		flag.PrintDefaults()
		os.Exit(2)
	}

	patch, err := sempatch.ParsePatchFile(*spFile)
	if err != nil {
		fatal(err)
	}
	opts := sempatch.Options{
		CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda, UseCTL: *useCTL,
		Defines: defines, Workers: *workers, NoPrefilter: *noPrefilter,
	}

	g := &gocci{inPlace: *inPlace, quiet: *quiet, ruleMatches: map[string]int{}}
	start := time.Now()
	if *recurse {
		g.runBatch(patch, opts, args)
	} else {
		g.runSingle(patch, opts, args)
	}
	elapsed := time.Since(start)

	if *quiet {
		for _, r := range patch.Rules() {
			fmt.Printf("rule %-20s matches=%d\n", r, g.ruleMatches[r])
		}
	}
	if *stats {
		if *recurse {
			fmt.Fprintf(os.Stderr, "gocci: %d files scanned, %d skipped by prefilter, %d matched (%d matches), %d changed, %d errors in %v\n",
				g.st.Files, g.st.Skipped, g.st.Matched, g.st.Matches, g.st.Changed, g.st.Errors, elapsed.Round(time.Millisecond))
		} else {
			// One engine run over all files: matches are not attributed
			// per file, so no per-file "matched" count is reported.
			fmt.Fprintf(os.Stderr, "gocci: %d files scanned, %d matches, %d changed in %v\n",
				g.st.Files, g.st.Matches, g.st.Changed, elapsed.Round(time.Millisecond))
		}
	}
	if g.st.Changed == 0 {
		fmt.Fprintln(os.Stderr, "no changes")
	}
	if g.hadError {
		os.Exit(1)
	}
}

// gocci accumulates run state shared by both modes.
type gocci struct {
	inPlace     bool
	quiet       bool
	st          sempatch.BatchStats
	ruleMatches map[string]int
	hadError    bool
}

// emit handles one per-file outcome: report errors, write or print changes.
func (g *gocci) emit(fr sempatch.FileResult) error {
	if fr.Err != nil {
		fmt.Fprintf(os.Stderr, "gocci: %v\n", fr.Err)
		g.hadError = true
		return nil
	}
	if fr.EnvsTruncated {
		fmt.Fprintf(os.Stderr, "gocci: warning: %s: environment cap (MaxEnvs) hit, matches dropped; results may be incomplete\n", fr.Name)
	}
	if !fr.Changed() {
		return nil
	}
	if g.inPlace {
		if err := writeInPlace(fr.Name, fr.Output); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "patched %s\n", fr.Name)
	} else if !g.quiet {
		fmt.Print(fr.Diff)
	}
	return nil
}

// writeInPlace atomically replaces path with content, keeping the original
// file's permission bits: the new text lands in a temp file in the same
// directory, is fsynced, and is renamed over the original, so a crash
// mid-write can never leave a truncated source file behind, and an
// executable script stays executable. Symlinks are resolved first so the
// rename rewrites the link's target instead of silently replacing the link
// with a regular file. (Hard-link peers do detach — the price of an atomic
// replace.)
func writeInPlace(path, content string) error {
	real, err := filepath.EvalSymlinks(path)
	if err != nil {
		return err
	}
	path = real
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gocci-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.WriteString(content); err != nil {
		tmp.Close()
		return err
	}
	// Chmod rather than relying on CreateTemp's 0600: the replacement must
	// carry the original's permission bits.
	if err := tmp.Chmod(info.Mode().Perm()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// runBatch applies the patch per-file across directory trees with the
// worker pool; file contents are read lazily inside the pool.
func (g *gocci) runBatch(patch *sempatch.Patch, opts sempatch.Options, dirs []string) {
	paths, err := collectSources(dirs)
	if err != nil {
		fatal(err)
	}
	st, err := sempatch.NewBatchApplier(patch, opts).ApplyAllPathsFunc(paths, func(fr sempatch.FileResult) error {
		for rule, n := range fr.MatchCount {
			g.ruleMatches[rule] += n
		}
		return g.emit(fr)
	})
	if err != nil {
		fatal(err)
	}
	g.st = st
}

// runSingle processes an explicit file list in one engine run, preserving
// cross-file metavariable flow between rules (a binding made in file1.c
// can drive a transformation in file2.c).
func (g *gocci) runSingle(patch *sempatch.Patch, opts sempatch.Options, paths []string) {
	var files []sempatch.File
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, sempatch.File{Name: path, Src: string(b)})
	}
	res, err := sempatch.NewApplier(patch, opts).Apply(files...)
	if err != nil {
		fatal(err)
	}
	if res.EnvsTruncated {
		fmt.Fprintln(os.Stderr, "gocci: warning: environment cap (MaxEnvs) hit, matches dropped; results may be incomplete")
	}
	g.ruleMatches = res.MatchCount
	g.st.Files = len(files)
	for _, n := range res.MatchCount {
		g.st.Matches += n
	}
	for _, f := range files {
		fr := sempatch.FileResult{Name: f.Name, Output: res.Outputs[f.Name], Diff: res.Diffs[f.Name]}
		if fr.Changed() {
			g.st.Changed++
		}
		if err := g.emit(fr); err != nil {
			fatal(err)
		}
	}
}

// collectSources walks directories gathering C/C++/CUDA files in sorted
// path order, so batch output order is reproducible run to run. Files
// reached through repeated or overlapping directory arguments are kept
// once — patching a file twice in one run would double-apply the rules.
func collectSources(dirs []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				// An unreadable entry skips, like any per-file failure —
				// one bad subdirectory must not abort the whole batch.
				fmt.Fprintf(os.Stderr, "gocci: skipping %s: %v\n", path, err)
				if d != nil && d.IsDir() {
					return filepath.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" {
					return filepath.SkipDir
				}
				return nil
			}
			if !srcExts[filepath.Ext(path)] {
				return nil
			}
			key := filepath.Clean(path)
			if !seen[key] {
				seen[key] = true
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci:", err)
	os.Exit(1)
}

// defineList collects repeatable -D flags.
type defineList []string

func (d *defineList) String() string { return fmt.Sprint([]string(*d)) }

func (d *defineList) Set(v string) error {
	*d = append(*d, v)
	return nil
}
