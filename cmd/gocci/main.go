// Command gocci applies a semantic patch to C/C++ source files, printing a
// unified diff by default (like spatch) or rewriting files in place.
//
// Usage:
//
//	gocci --sp-file patch.cocci [--c++[=STD]] [--cuda] [--use-ctl]
//	      [--in-place] file.c [file2.c ...]
package main

import (
	"flag"
	"fmt"
	"os"

	sempatch "repro"
)

func main() {
	spFile := flag.String("sp-file", "", "semantic patch file (.cocci)")
	cxx := flag.Int("cxx", 0, "enable C++ mode with the given standard (11, 17, 23); 0 = C")
	cuda := flag.Bool("cuda", false, "enable CUDA <<< >>> kernel launches")
	useCTL := flag.Bool("use-ctl", false, "verify dots constraints with the CTL/CFG backend")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	quiet := flag.Bool("quiet", false, "suppress diffs; only report matched rules")
	var defines defineList
	flag.Var(&defines, "D", "define a virtual dependency name (repeatable)")
	flag.Parse()

	if *spFile == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci --sp-file patch.cocci [options] file.c ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	patch, err := sempatch.ParsePatchFile(*spFile)
	if err != nil {
		fatal(err)
	}
	opts := sempatch.Options{CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda, UseCTL: *useCTL, Defines: defines}

	var files []sempatch.File
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, sempatch.File{Name: path, Src: string(b)})
	}

	res, err := sempatch.NewApplier(patch, opts).Apply(files...)
	if err != nil {
		fatal(err)
	}

	for _, name := range res.Changed() {
		if *inPlace {
			if err := os.WriteFile(name, []byte(res.Outputs[name]), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "patched %s\n", name)
		} else if !*quiet {
			fmt.Print(res.Diffs[name])
		}
	}
	if *quiet {
		for _, r := range patch.Rules() {
			fmt.Printf("rule %-20s matches=%d\n", r, res.MatchCount[r])
		}
	}
	if len(res.Changed()) == 0 {
		fmt.Fprintln(os.Stderr, "no changes")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci:", err)
	os.Exit(1)
}

// defineList collects repeatable -D flags.
type defineList []string

func (d *defineList) String() string { return fmt.Sprint([]string(*d)) }

func (d *defineList) Set(v string) error {
	*d = append(*d, v)
	return nil
}
