// Command gocci applies semantic patches to C/C++ source files, printing a
// unified diff by default (like spatch) or rewriting files in place.
//
// Usage:
//
//	gocci --sp-file patch.cocci [-cxx STD] [--cuda] [--seq-dots] [--use-ctl]
//	      [--in-place] file.c [file2.c ...]
//	gocci -j 8 -r --stats [--cache-dir DIR] path/to/tree patch.cocci [more.cocci ...]
//
// With an explicit file list, one engine processes all files together and
// metavariable bindings flow across files between rules. In recursive mode
// (-r) the positional arguments are directories, scanned for C/C++/CUDA
// sources, and the patches are applied to each file independently with a
// -j worker pool; files are read lazily inside the pool, a required-atom
// prefilter skips files a patch provably cannot touch (disable with
// --no-prefilter), and diffs stream in deterministic path order. Patches
// are named with --sp-file and/or as positional .cocci arguments; giving
// several runs them as a campaign, each file seeing the patches in command
// order but parsed at most once. --cache-dir enables the persistent corpus
// index: re-runs over unchanged files replay cached results instead of
// re-scanning, re-parsing, and re-matching them. --trace FILE records the
// run as Chrome trace-event JSON (per-stage spans on one track per worker)
// and --profile prints the aggregate table; see docs/observability.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	sempatch "repro"
	"repro/internal/buildinfo"
	"repro/internal/cliutil"
	"repro/internal/hpc"
)

func main() {
	// Subcommand dispatch precedes flag parsing: `gocci vet patch.cocci`
	// lints semantic patches without touching any source tree.
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	showVersion := buildinfo.Setup("gocci")
	spFile := flag.String("sp-file", "", "semantic patch file (.cocci); may also be given as a positional argument")
	cxx := flag.Int("cxx", 0, "enable C++ mode with the given standard (11, 17, 23); 0 = C")
	cuda := flag.Bool("cuda", false, "enable CUDA <<< >>> kernel launches")
	useCTL := flag.Bool("use-ctl", false, "verify dots constraints with the CTL/CFG backend (legacy sequence matcher only)")
	seqDots := flag.Bool("seq-dots", false, "match statement dots with the legacy syntactic sequence matcher instead of the CFG path engine")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	quiet := flag.Bool("quiet", false, "suppress diffs; only report matched rules")
	recurse := flag.Bool("r", false, "treat arguments as directories; apply to all C/C++ sources below them")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for recursive batch application")
	stats := flag.Bool("stats", false, "print a files/matches/changes summary to stderr")
	noPrefilter := flag.Bool("no-prefilter", false, "parse every file in recursive mode, even those the patch provably cannot touch")
	cacheDir := flag.String("cache-dir", "", "persistent corpus-index directory for recursive mode; re-runs over unchanged files replay cached results")
	noFnCache := flag.Bool("no-fn-cache", false, "disable function-granular matching and caching; eligible patches match whole files instead of per-function segments")
	verify := flag.Bool("verify", false, "run the post-transform safety checker in recursive mode; unsafe edits are demoted to warnings")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON profile of the run to this file (load in Perfetto)")
	profile := flag.Bool("profile", false, "print an aggregate profile to stderr: self-time per stage, per-rule attribution, cache and prefilter effectiveness")
	listCampaigns := flag.Bool("list-campaigns", false, "list the shipped HPC campaigns and exit")
	campaignName := flag.String("campaign", "", "run a shipped HPC campaign by name (see --list-campaigns) in addition to any .cocci arguments")
	check := flag.Bool("check", false, "match-only static analysis: report check-rule findings instead of diffs; exit 1 when findings at or above --fail-on remain")
	format := flag.String("format", "text", "finding output format for --check: text, json (NDJSON, the gocci-serve stream shape), or sarif")
	baselinePath := flag.String("baseline", "", "baseline file for --check: suppress the findings it records (write it with --baseline-write)")
	baselineWrite := flag.Bool("baseline-write", false, "record the current --check findings to --baseline PATH instead of gating on them")
	failOn := flag.String("fail-on", "error", "minimum finding severity that fails a --check run: error, warning, or info")
	var defines defineList
	flag.Var(&defines, "D", "define a virtual dependency name (repeatable)")
	flag.Parse()
	buildinfo.HandleVersion("gocci", showVersion)

	if *listCampaigns {
		for _, c := range hpc.Campaigns() {
			fmt.Printf("%-16s v%-3s %s (%s)\n", c.Name, c.Version, c.Title,
				strings.Join(c.PatchNames(), ", "))
		}
		return
	}

	args := flag.Args()
	// Positional patches: every argument ending in .cocci, in command
	// order, so `gocci -j 8 -r dir a.cocci b.cocci` runs a campaign.
	var patchFiles []string
	if *spFile != "" {
		patchFiles = append(patchFiles, *spFile)
	}
	var rest []string
	for _, a := range args {
		if strings.HasSuffix(a, ".cocci") {
			patchFiles = append(patchFiles, a)
		} else {
			rest = append(rest, a)
		}
	}
	args = rest
	if (len(patchFiles) == 0 && *campaignName == "") || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci --sp-file patch.cocci [options] file.c ...")
		fmt.Fprintln(os.Stderr, "       gocci [-j N] -r [options] dir ... patch.cocci [more.cocci ...]")
		fmt.Fprintln(os.Stderr, "       gocci vet patch.cocci [more.cocci ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cfg := checkConfig{enabled: *check, format: *format, baselinePath: *baselinePath,
		baselineWrite: *baselineWrite, failOn: *failOn}
	if err := cfg.validate(*inPlace); err != nil {
		fmt.Fprintln(os.Stderr, "gocci:", err)
		os.Exit(2)
	}

	var patches []*sempatch.Patch
	var patchNames []string
	var campaign *hpc.Campaign
	if *campaignName != "" {
		c, ok := hpc.ByName(*campaignName)
		if !ok {
			fmt.Fprintf(os.Stderr, "gocci: unknown campaign %q; see --list-campaigns\n", *campaignName)
			os.Exit(2)
		}
		campaign = c
		cp, err := c.Patches()
		if err != nil {
			fatal(err)
		}
		patches = append(patches, cp...)
		for _, n := range c.PatchNames() {
			patchNames = append(patchNames, c.Name+"/"+n)
		}
	}
	for _, pf := range patchFiles {
		p, err := sempatch.ParsePatchFile(pf)
		if err != nil {
			fatal(err)
		}
		patches = append(patches, p)
		patchNames = append(patchNames, pf)
	}
	if *cacheDir != "" && !*recurse {
		fmt.Fprintln(os.Stderr, "gocci: warning: --cache-dir only applies to recursive (-r) mode; ignored")
		*cacheDir = ""
	}
	if *verify && !*recurse {
		fmt.Fprintln(os.Stderr, "gocci: warning: --verify only applies to recursive (-r) mode; ignored")
		*verify = false
	}
	opts := sempatch.Options{
		CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda, UseCTL: *useCTL, SeqDots: *seqDots,
		Defines: defines, Workers: *workers, NoPrefilter: *noPrefilter,
		CacheDir: *cacheDir, NoFuncCache: *noFnCache, Verify: *verify,
	}
	if campaign != nil {
		// The campaign dictates its own dialect (C++ standard, CUDA) and
		// registers its script hooks; user dialect flags still apply to any
		// extra .cocci patches run alongside via the merged option set.
		opts = campaign.Options(opts)
	}
	if cfg.enabled {
		cfg.warnIfNoChecks(patches)
	}
	var tracer *sempatch.Tracer
	if *tracePath != "" || *profile {
		tracer = sempatch.NewTracer()
		opts.Tracer = tracer
	}

	g := &gocci{inPlace: *inPlace, quiet: *quiet, check: cfg.enabled,
		ruleMatches: make([]map[string]int, len(patches))}
	for i := range g.ruleMatches {
		g.ruleMatches[i] = map[string]int{}
	}
	start := time.Now()
	switch {
	case *recurse && len(patches) > 1:
		g.runCampaign(patches, opts, args)
	case *recurse:
		g.runBatch(patches[0], opts, args)
	default:
		g.runSingle(patches, opts, args)
	}
	elapsed := time.Since(start)

	if *quiet {
		// Counts are per patch: two patches may both name a rule `fix`,
		// and each line reports only its own patch's matches.
		for i, p := range patches {
			for _, r := range p.Rules() {
				if len(patches) > 1 {
					fmt.Printf("%s: rule %-20s matches=%d\n", patchNames[i], r, g.ruleMatches[i][r])
				} else {
					fmt.Printf("rule %-20s matches=%d\n", r, g.ruleMatches[i][r])
				}
			}
		}
	}
	if *stats {
		switch {
		case *recurse && len(patches) > 1:
			fmt.Fprintf(os.Stderr, "gocci: %d files scanned, %d changed, %d errors in %v\n",
				g.cst.Files, g.cst.Changed, g.cst.Errors, elapsed.Round(time.Millisecond))
			for _, ps := range g.cst.PerPatch {
				fmt.Fprintf(os.Stderr, "gocci:   patch %s: %d skipped by prefilter, %d cached, %d matched (%d matches), %d changed, %d functions matched, %d functions cached%s\n",
					ps.Patch, ps.Skipped, ps.Cached, ps.Matched, ps.Matches, ps.Changed, ps.FuncsMatched, ps.FuncsCached,
					verifySuffix(*verify, ps.Demoted, ps.Warnings))
			}
		case *recurse:
			fmt.Fprintf(os.Stderr, "gocci: %d files scanned, %d skipped by prefilter, %d cached, %d matched (%d matches), %d changed, %d errors, %d functions matched, %d functions cached%s in %v\n",
				g.st.Files, g.st.Skipped, g.st.Cached, g.st.Matched, g.st.Matches, g.st.Changed, g.st.Errors, g.st.FuncsMatched, g.st.FuncsCached,
				verifySuffix(*verify, g.st.Demoted, g.st.Warnings), elapsed.Round(time.Millisecond))
		default:
			// One engine run over all files: matches are not attributed
			// per file, so no per-file "matched" count is reported.
			fmt.Fprintf(os.Stderr, "gocci: %d files scanned, %d matches, %d changed in %v\n",
				g.st.Files, g.st.Matches, g.st.Changed, elapsed.Round(time.Millisecond))
		}
	}
	if *stats {
		// Fireable rules with zero matches across the whole run are dead
		// weight in the patch set; surface them so campaigns can be pruned.
		// Match-only check rules are labelled as such: a silent check rule
		// means "nothing to report here", not a transformation that missed.
		for i, p := range patches {
			isCheck := map[string]bool{}
			for _, r := range p.CheckRules() {
				isCheck[r] = true
			}
			for _, r := range p.FireableRules() {
				if g.ruleMatches[i][r] != 0 {
					continue
				}
				kind := "rule"
				if isCheck[r] {
					kind = "check rule"
				}
				if len(patches) > 1 {
					fmt.Fprintf(os.Stderr, "gocci: %s %s (%s) never fired\n", kind, r, patchNames[i])
				} else {
					fmt.Fprintf(os.Stderr, "gocci: %s %s never fired\n", kind, r)
				}
			}
		}
	}
	if *profile {
		fmt.Fprint(os.Stderr, tracer.Profile().Format())
	}
	if *tracePath != "" {
		if err := cliutil.WriteTrace(*tracePath, tracer); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gocci: trace written to %s\n", *tracePath)
	}
	g.reportCache()
	if cfg.enabled {
		os.Exit(g.finishCheck(cfg))
	}
	changed := g.st.Changed + g.cst.Changed
	if changed == 0 {
		fmt.Fprintln(os.Stderr, "no changes")
	}
	if g.hadError {
		os.Exit(1)
	}
}

// gocci accumulates run state shared by all modes.
type gocci struct {
	inPlace     bool
	quiet       bool
	check       bool // --check: collect findings, suppress diffs and writes
	st          sempatch.BatchStats
	cst         sempatch.CampaignStats
	cacheStatus sempatch.CacheStatus
	ruleMatches []map[string]int // per patch: rule name -> match count
	findings    []sempatch.Finding
	hadError    bool
}

// reportCache surfaces persistent-cache trouble: a rebuilt incompatible
// cache and dropped corrupt entries are warnings (the results are exact
// either way — entries are re-derived, never trusted), each with the
// remediation of clearing the directory if the condition repeats.
func (g *gocci) reportCache() {
	cs := g.cacheStatus
	if !cs.Enabled {
		return
	}
	if cs.Rebuilt != "" {
		fmt.Fprintf(os.Stderr, "gocci: warning: cache at %s was incompatible (%s); it was dropped and rebuilt\n", cs.Dir, cs.Rebuilt)
	}
	if cs.CorruptEntries > 0 {
		fmt.Fprintf(os.Stderr, "gocci: warning: %d corrupt cache entries at %s were dropped and rebuilt, never trusted; if this repeats, delete the directory to reset the cache\n", cs.CorruptEntries, cs.Dir)
	}
}

// emit handles one per-file outcome: report errors and verifier findings,
// write or print changes.
func (g *gocci) emit(fr sempatch.FileResult) error {
	if fr.Err != nil {
		fmt.Fprintf(os.Stderr, "gocci: %v\n", fr.Err)
		g.hadError = true
		return nil
	}
	if fr.EnvsTruncated {
		fmt.Fprintf(os.Stderr, "gocci: warning: %s: environment cap (MaxEnvs) hit, matches dropped; results may be incomplete\n", fr.Name)
	}
	for _, w := range fr.Warnings {
		fmt.Fprintf(os.Stderr, "gocci: verify: %s: %s\n", fr.Name, w)
	}
	if fr.Demoted {
		fmt.Fprintf(os.Stderr, "gocci: verify: %s: unsafe edit demoted; file left unchanged\n", fr.Name)
	}
	g.findings = append(g.findings, fr.Findings...)
	if g.check {
		// Match-only reporting: findings are emitted at the end of the run;
		// any transform a mixed patch set produced is deliberately dropped.
		return nil
	}
	if !fr.Changed() {
		return nil
	}
	if g.inPlace {
		if err := cliutil.WriteInPlace(fr.Name, fr.Output); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "patched %s\n", fr.Name)
	} else if !g.quiet {
		fmt.Print(fr.Diff)
	}
	return nil
}

// verifySuffix renders the demoted/warnings tail of a --stats line; empty
// unless --verify ran.
func verifySuffix(on bool, demoted, warnings int) string {
	if !on {
		return ""
	}
	return fmt.Sprintf(", %d demoted, %d warnings", demoted, warnings)
}

// runBatch applies one patch per-file across directory trees with the
// worker pool; file contents are read lazily inside the pool.
func (g *gocci) runBatch(patch *sempatch.Patch, opts sempatch.Options, dirs []string) {
	paths, err := collectSources(dirs)
	if err != nil {
		fatal(err)
	}
	ba := sempatch.NewBatchApplier(patch, opts)
	st, err := ba.ApplyAllPathsFunc(paths, func(fr sempatch.FileResult) error {
		for rule, n := range fr.MatchCount {
			g.ruleMatches[0][rule] += n
		}
		return g.emit(fr)
	})
	g.cacheStatus = ba.CacheStatus()
	if err != nil {
		fatal(err)
	}
	g.st = st
}

// runCampaign applies several patches in one sweep across directory trees:
// each file sees the patches in command order but is parsed at most once.
func (g *gocci) runCampaign(patches []*sempatch.Patch, opts sempatch.Options, dirs []string) {
	paths, err := collectSources(dirs)
	if err != nil {
		fatal(err)
	}
	ca := sempatch.NewCampaign(patches, opts)
	st, err := ca.ApplyAllPathsFunc(paths, func(fr sempatch.CampaignFileResult) error {
		out := sempatch.FileResult{Name: fr.Name, Output: fr.Output, Diff: fr.Diff, Err: fr.Err,
			Findings: fr.Findings()}
		for i, o := range fr.Patches {
			for rule, n := range o.MatchCount {
				g.ruleMatches[i][rule] += n
			}
			out.EnvsTruncated = out.EnvsTruncated || o.EnvsTruncated
			out.Warnings = append(out.Warnings, o.Warnings...)
			out.Demoted = out.Demoted || o.Demoted
		}
		return g.emit(out)
	})
	g.cacheStatus = ca.CacheStatus()
	if err != nil {
		fatal(err)
	}
	g.cst = st
}

// runSingle processes an explicit file list in one engine run per patch,
// preserving cross-file metavariable flow between rules (a binding made in
// file1.c can drive a transformation in file2.c). With several patches,
// each runs over the previous one's outputs and the printed diff is the
// net effect.
func (g *gocci) runSingle(patches []*sempatch.Patch, opts sempatch.Options, paths []string) {
	var files []sempatch.File
	orig := map[string]string{}
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		files = append(files, sempatch.File{Name: path, Src: string(b)})
		orig[path] = string(b)
	}
	// Like campaign mode, a -D name must be declared virtual by at least
	// one patch, and each patch only sees the names it declares — a
	// campaign-wide define set may mix names for different patches.
	declared := map[string]bool{}
	for _, p := range patches {
		for _, v := range p.Virtuals() {
			declared[v] = true
		}
	}
	for _, d := range opts.Defines {
		if !declared[d] {
			fatal(fmt.Errorf("define %q is not declared virtual in any patch", d))
		}
	}
	outputs := map[string]string{}
	diffs := map[string]string{}
	for _, f := range files {
		outputs[f.Name], diffs[f.Name] = f.Src, ""
	}
	for pi, patch := range patches {
		popts := opts
		popts.Defines = intersectDefines(opts.Defines, patch.Virtuals())
		res, err := sempatch.NewApplier(patch, popts).Apply(files...)
		if err != nil {
			fatal(err)
		}
		if res.EnvsTruncated {
			fmt.Fprintln(os.Stderr, "gocci: warning: environment cap (MaxEnvs) hit, matches dropped; results may be incomplete")
		}
		for rule, n := range res.MatchCount {
			g.ruleMatches[pi][rule] += n
			g.st.Matches += n
		}
		g.findings = append(g.findings, res.Findings...)
		for i, f := range files {
			outputs[f.Name] = res.Outputs[f.Name]
			diffs[f.Name] = res.Diffs[f.Name]
			files[i].Src = res.Outputs[f.Name]
		}
	}
	g.st.Files = len(files)
	g.st.Parsed = len(files) // the single-run engine parses every file
	for _, path := range paths {
		fr := sempatch.FileResult{Name: path, Output: outputs[path]}
		if len(patches) == 1 {
			fr.Diff = diffs[path]
		} else if outputs[path] != orig[path] {
			fr.Diff = sempatch.Diff(path, orig[path], outputs[path])
		}
		if fr.Changed() {
			g.st.Changed++
		}
		if err := g.emit(fr); err != nil {
			fatal(err)
		}
	}
}

// collectSources gathers C/C++/CUDA files below dirs via the shared
// collector, reporting skipped entries in gocci's prefix style.
func collectSources(dirs []string) ([]string, error) {
	return cliutil.CollectSources(dirs, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gocci: "+format+"\n", args...)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci:", err)
	os.Exit(1)
}

// intersectDefines keeps the defines a patch declares virtual.
func intersectDefines(defines, virtuals []string) []string {
	decl := map[string]bool{}
	for _, v := range virtuals {
		decl[v] = true
	}
	var out []string
	for _, d := range defines {
		if decl[d] {
			out = append(out, d)
		}
	}
	return out
}

// defineList collects repeatable -D flags.
type defineList []string

func (d *defineList) String() string { return fmt.Sprint([]string(*d)) }

func (d *defineList) Set(v string) error {
	*d = append(*d, v)
	return nil
}
