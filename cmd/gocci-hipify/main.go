// Command gocci-hipify translates CUDA sources to HIP. The default mode is
// AST-level translation (function names in call position, type names in type
// position, kernel launches, headers); --text switches to the hipify-perl
// style dictionary substitution baseline for comparison.
//
// Usage:
//
//	gocci-hipify [--text] [--in-place] file.cu [file2.cu ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/diff"
	"repro/internal/hipify"
)

func main() {
	showVersion := buildinfo.Setup("gocci-hipify")
	text := flag.Bool("text", false, "use the text-level (hipify-perl style) baseline")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	stats := flag.Bool("stats", false, "print translation statistics")
	flag.Parse()
	buildinfo.HandleVersion("gocci-hipify", showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-hipify [--text] [--in-place] file.cu ...")
		os.Exit(2)
	}

	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		src := string(b)
		var out string
		if *text {
			var n int
			out, n = hipify.TextHipify(src)
			if *stats {
				fmt.Fprintf(os.Stderr, "%s: %d text substitutions\n", path, n)
			}
		} else {
			var rep hipify.Report
			out, rep, err = hipify.Translate(path, src)
			if err != nil {
				fatal(err)
			}
			if *stats {
				fmt.Fprintf(os.Stderr,
					"%s: %d funcs, %d types, %d enums, %d launches, %d headers\n",
					path, rep.Functions, rep.Types, rep.Enums, rep.Launches, rep.Headers)
			}
		}
		if *inPlace {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(diff.Unified("a/"+path, "b/"+path, src, out))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci-hipify:", err)
	os.Exit(1)
}
