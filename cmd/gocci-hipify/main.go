// Command gocci-hipify translates CUDA sources to HIP. The default mode
// runs the shipped "hipify" semantic-patch campaign (see internal/hpc)
// through the engine's batch runner, so it inherits the -j worker pool,
// recursive tree scanning, the prefilter, and the persistent result cache;
// --verify adds the post-transform safety checker, demoting unsafe edits
// to warnings. --legacy selects the v0 AST walker and --text the
// hipify-perl style dictionary substitution baseline for comparison.
//
// Usage:
//
//	gocci-hipify [--legacy|--text] [--in-place] [--stats] [--verify]
//	             [-j N] [-r] [--cache-dir DIR] file.cu ...
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/buildinfo"
	"repro/internal/hipify"
	"repro/internal/hpc"
	"repro/internal/hpccli"
)

func main() {
	showVersion := buildinfo.Setup("gocci-hipify")
	legacy := flag.Bool("legacy", false, "use the v0 AST-walker translator instead of the shipped campaign")
	text := flag.Bool("text", false, "use the text-level (hipify-perl style) baseline")
	inPlace := flag.Bool("in-place", false, "rewrite files instead of printing diffs")
	stats := flag.Bool("stats", false, "print translation statistics")
	verify := flag.Bool("verify", false, "run the post-transform safety checker; unsafe edits are demoted to warnings")
	recurse := flag.Bool("r", false, "treat arguments as directories; translate all CUDA/C++ sources below them")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for the campaign batch runner")
	cacheDir := flag.String("cache-dir", "", "persistent corpus-index directory; re-runs over unchanged files replay cached results")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON profile of the campaign run to this file")
	profile := flag.Bool("profile", false, "print an aggregate per-stage/per-rule profile to stderr")
	flag.Parse()
	buildinfo.HandleVersion("gocci-hipify", showVersion)

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-hipify [--legacy|--text] [--in-place] [--stats] [--verify] [-j N] [-r] [--cache-dir DIR] file.cu ...")
		os.Exit(2)
	}

	spec := hpccli.Spec{
		Tool: "gocci-hipify", InPlace: *inPlace, Stats: *stats, Verify: *verify,
		Recurse: *recurse, Workers: *workers, CacheDir: *cacheDir,
		TracePath: *tracePath, Profile: *profile, Args: flag.Args(),
	}
	switch {
	case *text:
		spec.Legacy = func(path, src string) (string, error) {
			out, n := hipify.TextHipify(src)
			if *stats {
				fmt.Fprintf(os.Stderr, "%s: %d text substitutions\n", path, n)
			}
			return out, nil
		}
	case *legacy:
		spec.Legacy = func(path, src string) (string, error) {
			out, rep, err := hipify.Translate(path, src)
			if err != nil {
				return "", err
			}
			if *stats {
				fmt.Fprintf(os.Stderr,
					"%s: %d funcs, %d types, %d enums, %d launches, %d headers\n",
					path, rep.Functions, rep.Types, rep.Enums, rep.Launches, rep.Headers)
			}
			return out, nil
		}
	default:
		spec.Campaign, _ = hpc.ByName("hipify")
	}
	os.Exit(hpccli.Run(spec))
}
