// Command gocci-serve is the resident patch-serving daemon: it loads a
// corpus session (root directory + campaign of compiled .cocci patches +
// optional disk cache) and serves semantic patching over an HTTP/JSON API,
// keeping compiled patterns, the scan-word index, content hashes, and
// recently-used parse trees warm in memory between requests. A re-run
// after editing 3 files re-parses exactly 3 files.
//
// Usage:
//
//	gocci-serve --root path/to/tree [options] patch.cocci [more.cocci ...]
//
// Endpoints (see docs/serve.md for the full reference):
//
//	GET  /healthz                       liveness
//	GET  /metrics                       Prometheus exposition (counters + latency histograms)
//	GET  /v1/sessions                   session list with stats
//	GET  /v1/sessions/{id}/stats        one session's stats
//	GET  /v1/sessions/{id}/trace        last sweep's Chrome trace-event JSON
//	POST /v1/sessions/{id}/run          full-corpus sweep, streamed NDJSON
//	POST /v1/sessions/{id}/invalidate   drop resident state
//	POST /v1/apply                      one-shot file or snippet patching
//
// --pprof additionally mounts Go's net/http/pprof handlers under /debug/pprof/
// on the same listener for CPU and heap profiling of the daemon itself.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; exposed only with --pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	sempatch "repro"
	"repro/internal/buildinfo"
)

func main() {
	showVersion := buildinfo.Setup("gocci-serve")
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	root := flag.String("root", "", "corpus directory the session serves (required)")
	session := flag.String("session", "default", "session id in URLs")
	spFile := flag.String("sp-file", "", "semantic patch file (.cocci); may also be given as positional arguments")
	cxx := flag.Int("cxx", 0, "enable C++ mode with the given standard (11, 17, 23); 0 = C")
	cuda := flag.Bool("cuda", false, "enable CUDA <<< >>> kernel launches")
	useCTL := flag.Bool("use-ctl", false, "verify dots constraints with the CTL/CFG backend (legacy sequence matcher only)")
	seqDots := flag.Bool("seq-dots", false, "match statement dots with the legacy syntactic sequence matcher instead of the CFG path engine")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size per request")
	noPrefilter := flag.Bool("no-prefilter", false, "parse every file, even those a patch provably cannot touch")
	noFnCache := flag.Bool("no-fn-cache", false, "disable function-granular matching and caching; eligible patches match whole files instead of per-function segments")
	verify := flag.Bool("verify", false, "run the post-transform safety checker on every changed file; unsafe edits are demoted to warnings surfaced over the API and /metrics")
	cacheDir := flag.String("cache-dir", "", "disk cache behind the in-memory layer; a restarted daemon comes back warm")
	watch := flag.Duration("watch", 2*time.Second, "poll-watcher interval for change-driven invalidation; 0 disables")
	astCache := flag.Int("ast-cache", 256, "resident parse-tree LRU size (trees)")
	memCache := flag.Int("mem-cache", 0, "in-memory scan/result cache entry bound (0 = default 65536)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the same listener")
	var defines defineList
	flag.Var(&defines, "D", "define a virtual dependency name (repeatable)")
	flag.Parse()
	buildinfo.HandleVersion("gocci-serve", showVersion)

	var patchFiles []string
	if *spFile != "" {
		patchFiles = append(patchFiles, *spFile)
	}
	for _, a := range flag.Args() {
		if !strings.HasSuffix(a, ".cocci") {
			fmt.Fprintf(os.Stderr, "gocci-serve: unexpected argument %q (only .cocci patches are positional)\n", a)
			os.Exit(2)
		}
		patchFiles = append(patchFiles, a)
	}
	if *root == "" || len(patchFiles) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gocci-serve --root DIR [options] patch.cocci [more.cocci ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	patches := make([]*sempatch.Patch, len(patchFiles))
	for i, pf := range patchFiles {
		p, err := sempatch.ParsePatchFile(pf)
		if err != nil {
			fatal(err)
		}
		patches[i] = p
	}
	opts := sempatch.Options{
		CPlusPlus: *cxx > 0, Std: *cxx, CUDA: *cuda, UseCTL: *useCTL, SeqDots: *seqDots,
		Defines: defines, Workers: *workers, NoPrefilter: *noPrefilter, NoFuncCache: *noFnCache,
		Verify: *verify,
	}

	srv := sempatch.NewServer(opts)
	sessOpts := opts
	sessOpts.CacheDir = *cacheDir
	sess, err := srv.AddSession(sempatch.SessionConfig{
		ID:              *session,
		Root:            *root,
		Patches:         patches,
		Options:         sessOpts,
		ASTCacheSize:    *astCache,
		MemCacheEntries: *memCache,
		WatchInterval:   *watch,
	})
	if err != nil {
		fatal(err)
	}

	// Bind before announcing, so --addr with port 0 reports the real port
	// and a bind failure is a clean exit 1 rather than a late surprise.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		fatal(err)
	}
	handler := srv.Handler()
	if *pprofFlag {
		// An outer mux keeps the API handler untouched: pprof's handlers
		// register on http.DefaultServeMux at import, and the outer mux
		// routes /debug/pprof/ there while everything else stays with the
		// API. Off by default — profiling endpoints are not for open ports.
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		outer.Handle("/", handler)
		handler = outer
	}
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "gocci-serve %s: session %q serving %s (%d patches) on http://%s\n",
		buildinfo.Version(), sess.ID(), sess.Root(), len(patches), ln.Addr())

	select {
	case err := <-errc:
		// Serve only returns on failure.
		srv.Close()
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "gocci-serve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "gocci-serve:", err)
		}
		srv.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gocci-serve:", err)
	os.Exit(1)
}

// defineList collects repeatable -D flags.
type defineList []string

func (d *defineList) String() string { return fmt.Sprint([]string(*d)) }

func (d *defineList) Set(v string) error {
	*d = append(*d, v)
	return nil
}
