package sempatch

// Fuzz targets for the three front-end invariants the engine leans on:
//
//   - FuzzSmPLParse: the .cocci parser never panics, and every patch it
//     accepts survives the renderer's parse→print→parse fixpoint.
//   - FuzzCParse: the C/C++/CUDA parser never panics on arbitrary input,
//     in any dialect.
//   - FuzzSegmentSplice: function-granular segmentation is lossless — for
//     every file it segments, splicing the raw pieces reproduces the input
//     byte for byte (the invariant the incremental cache's correctness
//     rests on).
//
// Seed corpora live in testdata/fuzz/<FuzzName>/; CI replays them as part
// of the ordinary test run and additionally fuzzes each target briefly.

import (
	"os"
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/smpl"
)

func FuzzSmPLParse(f *testing.F) {
	f.Add("@@\nexpression e;\n@@\n- foo(e)\n+ bar(e)\n")
	f.Add("virtual fix\n\n@r depends on fix@\nidentifier i;\ntype T;\n@@\n- T i = old();\n+ T i = new();\n  ...\n")
	f.Add("@s@\n@@\n- a();\n...\nwhen != b(x)\n+ c();\n")
	f.Add("@script:python p@\nx << r.i;\ny;\n@@\ny = x + \"_v2\"\n")
	f.Add("// gocci:check id=chk severity=error msg=\"bad call of e\"\n@c@\nexpression e;\nposition p;\n@@\n* risky(e)\n")
	f.Add("@s@\nexpression x;\n@@\n* x = malloc(1);\n... when != free(x)\nwhen exists\n* return ...;\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := smpl.ParsePatch("fuzz.cocci", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip through the renderer.
		text := smpl.Render(p)
		p2, err := smpl.ParsePatch("fuzz.cocci", text)
		if err != nil {
			t.Fatalf("rendered patch does not re-parse: %v\nrendered:\n%s", err, text)
		}
		if again := smpl.Render(p2); again != text {
			t.Fatalf("render is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}

func FuzzCParse(f *testing.F) {
	f.Add("int f(int n) {\n    return n + 1;\n}\n", uint8(0))
	f.Add("template <typename T> T id(T x) { return x; }\n", uint8(1))
	f.Add("__global__ void k(float *a) { a[0] = 1.0f; }\nvoid h() { k<<<1, 2>>>(p); }\n", uint8(3))
	f.Add("#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = b[i];\n", uint8(0))
	f.Fuzz(func(t *testing.T, src string, dialect uint8) {
		opts := cparse.Options{
			CPlusPlus: dialect&1 != 0,
			CUDA:      dialect&2 != 0,
		}
		if opts.CPlusPlus {
			opts.Std = 23
		}
		_, _ = cparse.Parse("fuzz.c", src, opts) // must not panic
	})
}

func FuzzSegmentSplice(f *testing.F) {
	f.Add("int a;\n\nint f(void) {\n    return a;\n}\n\nstatic void g(int x) {\n    use(x);\n}\n")
	f.Add("#include <x.h>\nvoid only(void) {}\n")
	f.Add("int f(void){return 0;} int g(void){return 1;}\n")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := cparse.Parse("fuzz.c", src, cparse.Options{})
		if err != nil {
			return
		}
		seg := cast.SegmentFile(file)
		if seg == nil {
			return
		}
		gaps := make([]string, len(seg.Funcs)+1)
		funcs := make([]string, len(seg.Funcs))
		for i := range gaps {
			gaps[i] = seg.GapRaw(i)
		}
		for i := range seg.Funcs {
			funcs[i] = seg.Funcs[i].Raw()
		}
		if got := seg.Splice(gaps, funcs); got != src {
			t.Fatalf("splice of raw segments is not byte-identical:\ngot:\n%q\nwant:\n%q\nfirst diff at %d",
				got, src, firstDiff(got, src))
		}
	})
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestFuzzSeedCorpusReplay makes the on-disk seed corpus part of the
// ordinary (non-fuzz) test run even on toolchains that skip corpus replay,
// by checking the directories exist and are non-empty. The actual replay
// happens in the Fuzz* functions above, which `go test` runs over every
// seed without -fuzz.
func TestFuzzSeedCorpusReplay(t *testing.T) {
	for _, name := range []string{"FuzzSmPLParse", "FuzzCParse", "FuzzSegmentSplice"} {
		entries, err := fuzzDirEntries(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if entries == 0 {
			t.Errorf("testdata/fuzz/%s has no seed corpus entries", name)
		}
	}
}

func fuzzDirEntries(name string) (int, error) {
	ents, err := os.ReadDir("testdata/fuzz/" + name)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			n++
		}
	}
	return n, nil
}
